// metrics.go assembles pilfilld's Prometheus exposition on the shared
// obs.Registry: scrape-time gauges (queue depth, jobs by state, cap-table
// cache and solve-memo counters), monotonic counters fed by the job queue's
// OnFinish hook,
// fixed-bucket histograms of solver CPU and wall time — now also broken down
// per method and per pipeline phase — plus build metadata.
package server

import (
	"io"
	"sync"
	"time"

	"pilfill/internal/cap"
	"pilfill/internal/core"
	"pilfill/internal/jobqueue"
	"pilfill/internal/obs"
)

// metrics aggregates pilfilld's instruments. Queue-derived values are
// refreshed into a cached jobqueue.Stats at the top of every scrape, so the
// sample closures registered below never call back into the queue.
type metrics struct {
	reg *obs.Registry

	finished      *obs.CounterVec   // terminal jobs by final state
	ilpNodes      *obs.Counter      // branch-and-bound nodes across finished jobs
	lpPivots      *obs.Counter      // simplex pivots across finished jobs
	dualFallbacks *obs.Counter      // DualAscent tiles re-solved by B&B
	solveCPU      *obs.Histogram    // solver-only CPU seconds per finished job
	solveWall     *obs.Histogram    // end-to-end wall seconds per finished job
	methodCPU     *obs.HistogramVec // solver CPU seconds by placement method
	phase         *obs.HistogramVec // seconds by pipeline phase
	progressTiles *obs.Counter      // tile solves completed, counted live

	mu    sync.Mutex
	queue jobqueue.Stats // refreshed by scrape, read by the sample closures
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	reg.GaugeSamples("pilfilld_build_info",
		"Build metadata; the value is always 1.", func() []obs.Sample {
			return []obs.Sample{{Labels: []obs.Label{
				{Name: "version", Value: obs.Version},
				{Name: "go_version", Value: obs.GoVersion()},
			}, Value: 1}}
		})
	start := reg.Gauge("pilfilld_start_time_seconds",
		"Unix time the process started, in seconds.")
	start.Set(float64(time.Now().UnixNano()) / 1e9)

	stats := func() jobqueue.Stats {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.queue
	}
	reg.GaugeSamples("pilfilld_queue_depth", "Jobs waiting to run.",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(stats().Depth())}}
		})
	reg.GaugeSamples("pilfilld_queue_capacity", "Configured pending-buffer bound.",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(stats().Capacity)}}
		})
	reg.GaugeSamples("pilfilld_queue_workers", "Configured worker count.",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(stats().Workers)}}
		})
	reg.GaugeSamples("pilfilld_draining", "1 while the queue is shutting down.",
		func() []obs.Sample {
			v := 0.0
			if stats().Draining {
				v = 1
			}
			return []obs.Sample{{Value: v}}
		})
	reg.GaugeSamples("pilfilld_jobs", "Current jobs by state.",
		func() []obs.Sample {
			st := stats()
			out := make([]obs.Sample, 0, 5)
			for s := jobqueue.Pending; s <= jobqueue.Cancelled; s++ {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "state", Value: s.String()}},
					Value:  float64(st.ByState[s]),
				})
			}
			return out
		})
	reg.CounterSamples("pilfilld_jobs_submitted_total", "Lifetime accepted jobs.",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(stats().Submitted)}}
		})
	reg.CounterSamples("pilfilld_jobs_rejected_total",
		"Submissions rejected by backpressure or drain.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(stats().Rejected)}}
		})

	m.finished = reg.CounterVec("pilfilld_jobs_finished_total",
		"Jobs reaching a terminal state.", "state")
	m.ilpNodes = reg.Counter("pilfilld_ilp_nodes_total",
		"Branch-and-bound nodes across finished jobs.")
	m.lpPivots = reg.Counter("pilfilld_lp_pivots_total",
		"Simplex pivots across finished jobs.")
	m.dualFallbacks = reg.Counter("pilfilld_dual_fallback_total",
		"DualAscent tiles whose optimality certificate did not close and that "+
			"were re-solved by branch-and-bound, across finished jobs.")
	m.solveCPU = reg.Histogram("pilfilld_solve_cpu_seconds",
		"Solver-only CPU seconds per finished job.", nil)
	m.solveWall = reg.Histogram("pilfilld_solve_wall_seconds",
		"End-to-end wall seconds per finished job.", nil)
	m.methodCPU = reg.HistogramVec("pilfilld_method_solve_seconds",
		"Solver-only CPU seconds per finished job, by placement method.",
		"method", nil)
	m.phase = reg.HistogramVec("pilfilld_phase_seconds",
		"Per-phase seconds per finished job (preprocess/solve/evaluate/place).",
		"phase", nil)
	m.progressTiles = reg.Counter("pilfilld_progress_tiles_total",
		"Tile solves completed, counted as they finish (advances while jobs "+
			"run, unlike the per-job figures observed at completion).")

	reg.CounterSamples("pilfilld_captable_cache_hits_total",
		"Shared cap-table cache hits (process-wide).", func() []obs.Sample {
			return []obs.Sample{{Value: float64(cap.Shared.Stats().Hits)}}
		})
	reg.CounterSamples("pilfilld_captable_cache_misses_total",
		"Shared cap-table cache misses (process-wide).", func() []obs.Sample {
			return []obs.Sample{{Value: float64(cap.Shared.Stats().Misses)}}
		})
	reg.GaugeSamples("pilfilld_captable_cache_entries",
		"Shared cap-table cache entries (process-wide).", func() []obs.Sample {
			return []obs.Sample{{Value: float64(cap.Shared.Stats().Entries)}}
		})

	reg.CounterSamples("pilfilld_solve_memo_hits_total",
		"Shared tile-solve memo hits (process-wide).", func() []obs.Sample {
			return []obs.Sample{{Value: float64(core.SharedSolveMemo.Stats().Hits)}}
		})
	reg.CounterSamples("pilfilld_solve_memo_misses_total",
		"Shared tile-solve memo misses (process-wide).", func() []obs.Sample {
			return []obs.Sample{{Value: float64(core.SharedSolveMemo.Stats().Misses)}}
		})
	reg.CounterSamples("pilfilld_solve_memo_stored_total",
		"Shared tile-solve memo entries stored (process-wide).", func() []obs.Sample {
			return []obs.Sample{{Value: float64(core.SharedSolveMemo.Stats().Stored)}}
		})
	reg.GaugeSamples("pilfilld_solve_memo_entries",
		"Shared tile-solve memo entries (process-wide).", func() []obs.Sample {
			return []obs.Sample{{Value: float64(core.SharedSolveMemo.Stats().Entries)}}
		})
	return m
}

// registerTenants adds the per-tenant admission families, sampled from the
// admission layer at scrape time (tenant cardinality is operator-controlled
// and small).
func (m *metrics) registerTenants(adm *jobqueue.TenantAdmission) {
	samples := func(value func(jobqueue.TenantStats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			stats := adm.Stats()
			out := make([]obs.Sample, 0, len(stats))
			for _, st := range stats {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "tenant", Value: st.Tenant}},
					Value:  value(st),
				})
			}
			return out
		}
	}
	m.reg.CounterSamples("pilfilld_tenant_admitted_total",
		"Submissions admitted, by tenant.",
		samples(func(st jobqueue.TenantStats) float64 { return float64(st.Admitted) }))
	m.reg.CounterSamples("pilfilld_tenant_rejected_total",
		"Submissions rejected by rate or queue-share limits, by tenant.",
		samples(func(st jobqueue.TenantStats) float64 { return float64(st.Rejected) }))
	m.reg.GaugeSamples("pilfilld_tenant_active_jobs",
		"Admitted jobs not yet finished, by tenant.",
		samples(func(st jobqueue.TenantStats) float64 { return float64(st.Active) }))
	m.reg.GaugeSamples("pilfilld_tenant_tokens",
		"Current token-bucket level, by tenant.",
		samples(func(st jobqueue.TenantStats) float64 { return st.Tokens }))
}

// jobFinished is wired to jobqueue.Config.OnFinish.
func (m *metrics) jobFinished(snap jobqueue.Snapshot) {
	m.finished.Inc(snap.State.String())
	rep, ok := snap.Result.(*ReportPayload)
	if !ok || snap.State != jobqueue.Done {
		return
	}
	m.ilpNodes.Add(float64(rep.ILPNodes))
	m.lpPivots.Add(float64(rep.LPPivots))
	m.dualFallbacks.Add(float64(rep.DualFallbacks))
	m.solveCPU.Observe(rep.SolveCPUMS / 1e3)
	m.solveWall.Observe(rep.WallMS / 1e3)
	m.methodCPU.Observe(rep.Method, rep.SolveCPUMS/1e3)
	m.phase.Observe("preprocess", rep.PhasesMS.Preprocess/1e3)
	m.phase.Observe("solve", rep.PhasesMS.Solve/1e3)
	m.phase.Observe("evaluate", rep.PhasesMS.Evaluate/1e3)
	m.phase.Observe("place", rep.PhasesMS.Place/1e3)
}

// write refreshes the queue-derived samples and renders the exposition.
func (m *metrics) write(w io.Writer, stats jobqueue.Stats) error {
	m.mu.Lock()
	m.queue = stats
	m.mu.Unlock()
	return m.reg.Write(w)
}
