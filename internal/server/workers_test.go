package server_test

import (
	"encoding/json"
	"net/http"
	"runtime"
	"testing"

	"pilfill/internal/jobqueue"
	"pilfill/internal/server"
)

func TestEffectiveWorkers(t *testing.T) {
	nproc := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, queueWorkers, want int
	}{
		{0, 1, nproc},                   // unset: all cores with one queue worker
		{0, 2, max(1, nproc/2)},         // unset: fair share of the CPU
		{1, 1, 1},                       // modest explicit request honored
		{nproc * 8, 1, nproc},           // oversubscribing request clamped
		{nproc * 8, 4, max(1, nproc/4)}, // clamped to the per-job share
		{0, nproc * 16, 1},              // more queue workers than cores: floor 1
		{3, 0, min(3, nproc)},           // queueWorkers<=0 treated as 1
		{-5, 1, nproc},                  // negative request = unset
	}
	for _, c := range cases {
		if got := server.EffectiveWorkers(c.requested, c.queueWorkers); got != c.want {
			t.Errorf("EffectiveWorkers(%d, %d) = %d, want %d",
				c.requested, c.queueWorkers, got, c.want)
		}
	}
}

// TestJobReportCarriesEffectiveWorkers submits a job with an absurd worker
// request and checks the daemon clamped it and reported the value it used.
func TestJobReportCarriesEffectiveWorkers(t *testing.T) {
	_, ts := startServer(t, server.Config{Queue: jobqueue.Config{Capacity: 4, Workers: 1}})

	code, data := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", server.SubmitRequest{
		Testcase: "T1",
		Method:   "Greedy",
		Options:  server.SubmitOptions{Window: 32, R: 4, Seed: 1, Workers: 10_000},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var sub server.JobView
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, ts.URL, sub.ID, func(v server.JobView) bool {
		return v.State == "done" || v.State == "failed"
	})
	if final.State != "done" {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	want := server.EffectiveWorkers(10_000, 1)
	if final.Report == nil || final.Report.Workers != want {
		t.Fatalf("report workers = %+v, want %d", final.Report, want)
	}
}
