// Package server exposes fill synthesis as an HTTP service: jobs are
// submitted to the bounded queue of internal/jobqueue, run the library's
// session/solve pipeline under a cancellable context, and report progress,
// results and Prometheus metrics.
//
// API:
//
//	POST   /v1/jobs       submit a job (DEF or named testcase + method, or a
//	                      sharded region job via "region"); 202 with the job
//	                      id, 200 when an idempotency key dedupes onto an
//	                      existing job, 429 when the queue is full or the
//	                      tenant (X-Tenant header) is over its rate or queue
//	                      share (with Retry-After), 503 while draining
//	GET    /v1/jobs       list jobs; ?limit= and ?after= page through the
//	                      submission-ordered listing
//	GET    /v1/jobs/{id}  job state, running phase, and the report when done
//	DELETE /v1/jobs/{id}  cancel a pending or running job (409 if finished)
//	GET    /healthz       200 "ok", 503 while draining (liveness)
//	GET    /readyz        200 "ok" only while accepting new work — flipped
//	                      off by SetReady before a drain so coordinators and
//	                      load balancers stop routing here (readiness)
//	GET    /metrics       Prometheus text exposition
//
// With Config.DataDir set, keyed submissions are written to an append-only
// JSONL WAL and unfinished ones are resubmitted on startup, so a restart
// does not lose accepted work (the idempotency keys make the replay safe).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pilfill"
	"pilfill/internal/jobqueue"
	"pilfill/internal/layout"
	"pilfill/internal/obs"
	"pilfill/internal/testcases"
)

// Config parameterizes a Server.
type Config struct {
	// Queue configures the underlying job queue (capacity, workers, default
	// per-job timeout). The OnFinish hook is owned by the server's metrics
	// and must be left nil.
	Queue jobqueue.Config
	// MaxBodyBytes bounds the request body (inline DEF can be large);
	// default 64 MiB.
	MaxBodyBytes int64
	// TaskFactory translates a validated SubmitRequest into the task the
	// queue runs. Nil uses the real fill-synthesis pipeline; tests substitute
	// controllable tasks to exercise queue behavior deterministically.
	TaskFactory func(req *SubmitRequest) (jobqueue.Task, error)
	// Logger receives structured request and job-lifecycle logs (one Info
	// line per request with its id, method, path, status and duration; job
	// state transitions via the queue). Nil disables logging. When
	// Queue.Logger is nil it inherits this logger.
	Logger *slog.Logger
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/ —
	// protect the port accordingly when enabling it.
	Pprof bool
	// Tenant enables per-tenant admission control on submissions, keyed by
	// the X-Tenant header (missing header = jobqueue.DefaultTenant). Nil
	// disables admission.
	Tenant *jobqueue.TenantConfig
	// DataDir, when non-empty, enables the durable-jobs WAL at
	// DataDir/jobs.wal: keyed submissions are logged on accept and marked on
	// completion, and unfinished ones are resubmitted when the server starts.
	DataDir string
}

// Server is the pilfilld HTTP handler. Create with New; it owns its queue.
type Server struct {
	q       *jobqueue.Queue
	mux     *http.ServeMux
	metrics *metrics
	factory func(req *SubmitRequest) (jobqueue.Task, error)
	logger  *slog.Logger
	adm     *jobqueue.TenantAdmission
	wal     *jobqueue.WAL
	ready   atomic.Bool  // readiness; flipped off by SetReady before a drain
	nextReq atomic.Int64 // request-id counter

	mu      sync.Mutex
	methods map[string]string // job id -> method label, for JobView
	tenants map[string]string // job id -> admitted tenant, released on finish
}

// New builds the server, starts its queue workers, and — with a DataDir —
// replays unfinished keyed jobs from the WAL. The returned error is always a
// WAL problem (open, replay); a server without durability cannot fail.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	s := &Server{
		metrics: newMetrics(),
		factory: cfg.TaskFactory,
		logger:  cfg.Logger,
		methods: make(map[string]string),
		tenants: make(map[string]string),
	}
	s.ready.Store(true)
	if s.factory == nil {
		queueWorkers := cfg.Queue.Workers
		s.factory = func(req *SubmitRequest) (jobqueue.Task, error) {
			return defaultTask(req, queueWorkers, s.metrics.progressTiles)
		}
	}
	if cfg.Tenant != nil {
		s.adm = jobqueue.NewTenantAdmission(*cfg.Tenant)
		s.metrics.registerTenants(s.adm)
	}
	qcfg := cfg.Queue
	qcfg.OnFinish = s.jobFinished
	if qcfg.Logger == nil {
		qcfg.Logger = cfg.Logger
	}
	s.q = jobqueue.New(qcfg)

	if cfg.DataDir != "" {
		wal, recs, err := jobqueue.OpenWAL(filepath.Join(cfg.DataDir, "jobs.wal"))
		if err != nil {
			s.q.Shutdown(context.Background())
			return nil, err
		}
		s.wal = wal
		if err := s.replay(recs); err != nil {
			s.q.Shutdown(context.Background())
			return nil, err
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.maxBody(cfg.MaxBodyBytes, s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s, nil
}

// jobFinished is the queue's OnFinish hook: metrics, tenant release, and the
// WAL done record. Cancelled jobs are deliberately not marked done — a
// drain-time cancellation must be replayed after restart, or accepted work
// would be lost.
func (s *Server) jobFinished(snap jobqueue.Snapshot) {
	s.metrics.jobFinished(snap)
	s.mu.Lock()
	tenant, admitted := s.tenants[snap.ID]
	delete(s.tenants, snap.ID)
	s.mu.Unlock()
	if admitted {
		s.adm.Release(tenant)
	}
	if snap.Key != "" && snap.State != jobqueue.Cancelled {
		if err := s.wal.Append(jobqueue.WALRecord{Type: jobqueue.WALDone, Key: snap.Key}); err != nil && s.logger != nil {
			s.logger.Error("wal done append failed", "key", snap.Key, "err", err)
		}
	}
}

// replay resubmits every accepted-but-unfinished keyed job from a prior
// incarnation. Requests that no longer validate are marked done (replaying
// them forever would wedge every startup); everything else re-enters the
// queue under its original key.
func (s *Server) replay(recs []jobqueue.WALRecord) error {
	for _, rec := range jobqueue.WALUnfinished(recs) {
		var req SubmitRequest
		if err := json.Unmarshal(rec.Payload, &req); err != nil {
			return fmt.Errorf("wal replay %q: %w", rec.Key, err)
		}
		task, err := s.factory(&req)
		if err != nil {
			if s.logger != nil {
				s.logger.Warn("wal replay: job no longer valid, marking done", "key", rec.Key, "err", err)
			}
			if err := s.wal.Append(jobqueue.WALRecord{Type: jobqueue.WALDone, Key: rec.Key}); err != nil {
				return err
			}
			continue
		}
		snap, _, err := s.q.SubmitKeyed(task, jobqueue.SubmitOptions{
			Key:     rec.Key,
			Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		})
		if err != nil {
			return fmt.Errorf("wal replay %q: %w", rec.Key, err)
		}
		s.mu.Lock()
		s.methods[snap.ID] = req.Method
		s.mu.Unlock()
		if s.logger != nil {
			s.logger.Info("wal replay: resubmitted job", "key", rec.Key, "id", snap.ID)
		}
	}
	return nil
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// ServeHTTP implements http.Handler. Every request is assigned an id
// (honoring an incoming X-Request-ID — the coordinator's trace-propagation
// channel) that is echoed in the response header, written back onto the
// request headers so handlers read one canonical value, and carried through
// the request log.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = fmt.Sprintf("req-%08d", s.nextReq.Add(1))
		r.Header.Set("X-Request-ID", reqID)
	}
	w.Header().Set("X-Request-ID", reqID)
	if s.logger == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.logger.Info("request",
		"id", reqID, "method", r.Method, "path", r.URL.Path,
		"status", sw.status, "dur", time.Since(start))
}

// Queue exposes the underlying queue (stats, direct submission in tests).
func (s *Server) Queue() *jobqueue.Queue { return s.q }

// Shutdown drains the queue under ctx's deadline: new submissions are
// rejected with 503, running and queued jobs finish (or are cancelled when
// ctx expires). The HTTP listener itself is the caller's to close — keep it
// serving during the drain so clients can poll final job states.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.q.Shutdown(ctx)
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Server) maxBody(limit int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) methodLabel(id string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.methods[id]
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	task, err := s.factory(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if res := s.adm.Admit(tenant); !res.OK {
		w.Header().Set("Retry-After", jobqueue.RetryAfterSeconds(res.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "tenant over %s limit, retry later", res.Reason)
		return
	}
	snap, deduped, err := s.q.SubmitKeyed(task, jobqueue.SubmitOptions{
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Key:     req.Key,
		Trace:   r.Header.Get("X-Request-ID"),
	})
	if err != nil || deduped {
		// No new job entered the queue: the admitted slot is unused.
		s.adm.Release(tenant)
	}
	switch {
	case errors.Is(err, jobqueue.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full, retry later")
		return
	case errors.Is(err, jobqueue.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if deduped {
		writeJSON(w, http.StatusOK, viewOf(snap, s.methodLabel(snap.ID)))
		return
	}
	s.mu.Lock()
	s.methods[snap.ID] = req.Method
	if s.adm != nil {
		s.tenants[snap.ID] = tenant
	}
	s.mu.Unlock()
	if req.Key != "" && s.wal != nil {
		payload, merr := json.Marshal(&req)
		if merr == nil {
			merr = s.wal.Append(jobqueue.WALRecord{Type: jobqueue.WALAccept, Key: req.Key, Payload: payload})
		}
		if merr != nil && s.logger != nil {
			s.logger.Error("wal accept append failed", "key", req.Key, "err", merr)
		}
	}
	writeJSON(w, http.StatusAccepted, viewOf(snap, req.Method))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	snaps, next := s.q.ListPage(r.URL.Query().Get("after"), limit)
	resp := ListResponse{Jobs: make([]JobView, 0, len(snaps)), NextAfter: next}
	for _, snap := range snaps {
		v := viewOf(snap, s.methodLabel(snap.ID))
		v.Report = nil // keep the listing light; fetch one job for the report
		resp.Jobs = append(resp.Jobs, v)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.q.Get(id)
	if errors.Is(err, jobqueue.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(snap, s.methodLabel(id)))
}

// handleProgress serves just the live progress snapshot — the polling-
// friendly subset of the job view the cluster coordinator forwards into its
// chip-level aggregation. An empty object means the job has not published
// progress yet (still pending, or a task without progress instrumentation).
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.q.Get(id)
	if errors.Is(err, jobqueue.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	pp := progressOf(snap)
	if pp == nil {
		pp = &ProgressPayload{Phase: snap.Phase}
	}
	writeJSON(w, http.StatusOK, struct {
		ID    string `json:"id"`
		State string `json:"state"`
		*ProgressPayload
	}{ID: snap.ID, State: snap.State.String(), ProgressPayload: pp})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.q.Cancel(id)
	switch {
	case errors.Is(err, jobqueue.ErrNotFound):
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	case errors.Is(err, jobqueue.ErrFinished):
		writeError(w, http.StatusConflict, "job %q already %s", id, snap.State)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(snap, s.methodLabel(id)))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.q.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// SetReady flips the /readyz readiness signal. pilfilld calls SetReady(false)
// at SIGTERM, before the queue drain starts, so routers see "not ready"
// while in-flight jobs are still finishing cleanly.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// handleReady is the routing signal: distinct from /healthz (liveness, which
// stays 200 until the process is truly unable to serve) so a draining worker
// is taken out of rotation without being restarted.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() || s.q.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.write(w, s.q.Stats()) // write errors mean a gone client
}

// EffectiveWorkers resolves a job's per-run tile-solver worker count so that
// concurrent jobs never oversubscribe the CPU: each of the queue's workers
// gets an equal share of GOMAXPROCS (at least 1), an unset request defaults
// to that share, and an explicit request is clamped to it. With one queue
// worker this is plain "default to all cores".
func EffectiveWorkers(requested, queueWorkers int) int {
	if queueWorkers < 1 {
		queueWorkers = 1
	}
	share := runtime.GOMAXPROCS(0) / queueWorkers
	if share < 1 {
		share = 1
	}
	if requested <= 0 || requested > share {
		return share
	}
	return requested
}

// DefaultTask is DefaultTaskFactory for a single-worker queue — kept for
// callers that construct tasks directly.
func DefaultTask(req *SubmitRequest) (jobqueue.Task, error) {
	return defaultTask(req, 1, nil)
}

// DefaultTaskFactory returns the production task factory for a queue running
// queueWorkers jobs concurrently. Each job's tile-solver worker count is
// resolved with EffectiveWorkers so the daemon's total parallelism stays
// within GOMAXPROCS; the resolved value appears as "workers" in the job
// report. (A server built by New wires its own factory so the live tile
// counter feeds pilfilld_progress_tiles_total; this exported form counts
// nothing.)
func DefaultTaskFactory(queueWorkers int) func(req *SubmitRequest) (jobqueue.Task, error) {
	return func(req *SubmitRequest) (jobqueue.Task, error) {
		return defaultTask(req, queueWorkers, nil)
	}
}

// defaultTask validates the request up-front (so bad submissions fail with
// 400 instead of a Failed job) and returns a task that loads the layout,
// prepares a session, and runs the method under the job's context.
// Cancellation between phases is checked explicitly; during the solve it
// propagates through Session.RunContext to the tile loops and ILP node
// loops.
func defaultTask(req *SubmitRequest, queueWorkers int, progressTiles *obs.Counter) (jobqueue.Task, error) {
	if req.Region != nil {
		return regionTask(req, queueWorkers, progressTiles)
	}
	m, ok := ParseMethod(req.Method)
	if !ok {
		return nil, fmt.Errorf("unknown method %q", req.Method)
	}
	if (req.Testcase == "") == (req.DEF == "") {
		return nil, errors.New("exactly one of testcase and def must be set")
	}
	if req.Testcase != "" {
		switch strings.ToUpper(req.Testcase) {
		case "T1", "T2":
		default:
			return nil, fmt.Errorf("unknown testcase %q (want T1 or T2)", req.Testcase)
		}
	}
	o := req.Options
	if o.Window == 0 {
		o.Window = 32
	}
	if o.R == 0 {
		o.R = 4
	}
	if o.SlackDef == 0 {
		o.SlackDef = 3
	}
	if o.SlackDef < 1 || o.SlackDef > 3 {
		return nil, fmt.Errorf("slackdef %d out of range [1,3]", o.SlackDef)
	}
	o.Workers = EffectiveWorkers(o.Workers, queueWorkers)
	reqCopy := *req // detach from the handler's request lifetime

	return func(ctx context.Context, setPhase func(string)) (any, error) {
		tracker := newProgressTracker(func(v any) { jobqueue.PublishProgress(ctx, v) }, progressTiles)
		setPhase = tracker.wrapSetPhase(setPhase)
		setPhase("load")
		var l *layout.Layout
		var err error
		switch {
		case reqCopy.Testcase != "":
			switch strings.ToUpper(reqCopy.Testcase) {
			case "T1":
				l, err = pilfill.GenerateT1()
			case "T2":
				l, err = pilfill.GenerateT2()
			}
		case reqCopy.LEF != "":
			l, err = pilfill.LoadLEFDEF(strings.NewReader(reqCopy.LEF), strings.NewReader(reqCopy.DEF))
		default:
			l, err = pilfill.LoadDEF(strings.NewReader(reqCopy.DEF))
		}
		if err != nil {
			return nil, fmt.Errorf("load layout: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		setPhase("prepare")
		var tr *obs.Tracer
		if o.CollectTrace {
			tr = obs.NewTracer(0)
		}
		sess, err := pilfill.NewSession(l, pilfill.Options{
			Window:       testcases.WindowNM(o.Window),
			R:            o.R,
			Rule:         pilfill.DefaultRuleT1T2(),
			Weighted:     o.Weighted,
			Def:          pilfill.SlackDef(o.SlackDef),
			Seed:         o.Seed,
			NetCap:       o.NetCapPS * 1e-12,
			Workers:      o.Workers,
			Grounded:     o.Grounded,
			ILPNodeLimit: o.ILPNodeLimit,
			NoSolveMemo:  o.NoSolveMemo,
			DualGapTol:   o.DualGapTol,
			Trace:        tr,
			OnTile:       tracker.onTile,
		})
		if err != nil {
			return nil, fmt.Errorf("prepare session: %w", err)
		}
		tracker.setTotal(len(sess.Instances))
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		setPhase("solve")
		rep, err := sess.RunContext(ctx, m)
		if err != nil {
			return nil, err
		}
		setPhase("report")
		payload := BuildReport(sess, rep)
		payload.Trace = tr.Dump("pilfilld")
		return payload, nil
	}, nil
}
