// region.go runs one sharded region job on a worker: the cluster coordinator
// (internal/cluster) posts a SubmitRequest carrying a RegionSpec — a stripe
// sub-layout DEF plus the owned tile rectangle, its fill budget, and the
// offsets mapping stripe coordinates back to the chip — and the worker solves
// exactly those tiles with a plain core.Engine. Everything the gather needs
// to reassemble a bit-identical whole-chip report rides back in the
// RegionPayload: fills in chip site coordinates in placement order, raw
// float64 delay subtotals (JSON round-trips float64 exactly), and per-net
// subtotals keyed by net name (stripe-local net indices differ from the
// chip's; names are the shared key space).
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"strings"
	"time"

	"pilfill"
	"pilfill/internal/core"
	"pilfill/internal/density"
	"pilfill/internal/ilp"
	"pilfill/internal/jobqueue"
	"pilfill/internal/layout"
	"pilfill/internal/obs"
)

// RegionSpec is the region-job extension of SubmitRequest: solve only the
// owned tile rectangle of the request's DEF (a stripe sub-layout cut by
// internal/shard) under an externally computed fill budget. Tile indices are
// chip-grid indices; the offsets translate them to the stripe's local grid.
type RegionSpec struct {
	// ID is the deterministic region identifier (shard.Region.ID) echoed in
	// the result payload.
	ID string `json:"id"`
	// WindowNM and R reproduce the chip's dissection on the stripe layout.
	WindowNM int64 `json:"window_nm"`
	R        int   `json:"r"`
	// Layer is the routing-layer index to fill (default 0).
	Layer int `json:"layer,omitempty"`
	// Fill rule in nanometers. The coordinator must send the chip's rule:
	// the site grid is derived from it.
	RuleFeatureNM int64 `json:"rule_feature_nm"`
	RuleGapNM     int64 `json:"rule_gap_nm"`
	RuleBufferNM  int64 `json:"rule_buffer_nm"`
	// TileOffI/TileOffJ translate stripe-local tile indices to chip indices;
	// ColOff/RowOff translate fill-site coordinates the same way.
	TileOffI int `json:"tile_off_i"`
	TileOffJ int `json:"tile_off_j"`
	ColOff   int `json:"col_off"`
	RowOff   int `json:"row_off"`
	// Owned tile rectangle in chip indices: i in [I0, I1), j in [J0, J1).
	I0 int `json:"i0"`
	J0 int `json:"j0"`
	I1 int `json:"i1"`
	J1 int `json:"j1"`
	// Budget is the owned rectangle's fill budget, row-major:
	// Budget[(i-I0)*(J1-J0) + (j-J0)].
	Budget []int `json:"budget"`
}

// RegionPayload is a region job's result: the merge inputs the coordinator
// folds into a whole-chip report. Delay fields carry raw seconds (not the
// display picoseconds of the top-level payload) so the gather's float
// arithmetic sees the exact bits the worker produced.
type RegionPayload struct {
	ID        string `json:"id"`
	Tiles     int    `json:"tiles"`
	Requested int    `json:"requested"`
	Placed    int    `json:"placed"`
	ILPNodes  int    `json:"ilp_nodes,omitempty"`
	LPPivots  int    `json:"lp_pivots,omitempty"`
	Repaired  int    `json:"repaired,omitempty"`
	Dropped   int    `json:"dropped,omitempty"`
	// Unweighted/Weighted are this region's delay subtotals in seconds.
	Unweighted float64 `json:"unweighted"`
	Weighted   float64 `json:"weighted"`
	// PerNet holds each net's added delay in seconds, keyed by net name;
	// zero entries are omitted.
	PerNet map[string]float64 `json:"per_net,omitempty"`
	// Fills are the placed fill sites in chip coordinates ([col, row]), in
	// placement order; FillHash is their FNV-1a hash (benchchip's layout:
	// little-endian col then row, 16 bytes per fill).
	Fills    [][2]int `json:"fills"`
	FillHash string   `json:"fill_hash"`
	// SlowTiles are the region's slowest tile solves (chip-grid coordinates,
	// slowest first) — the coordinator merges them into the cluster-wide
	// slowest-tiles table on /statusz. Wall-clock measurements: informative,
	// excluded from the bit-identity contract.
	SlowTiles []TileMS `json:"slow_tiles,omitempty"`
}

// TileMS is one slowest-tiles entry: chip tile coordinates, solve duration
// in milliseconds, and the branch-and-bound nodes behind it.
type TileMS struct {
	I     int     `json:"i"`
	J     int     `json:"j"`
	MS    float64 `json:"ms"`
	Nodes int     `json:"nodes,omitempty"`
}

// slowTilesOf converts a Result's top-K list to the wire form.
func slowTilesOf(res *core.Result) []TileMS {
	if len(res.SlowestTiles) == 0 {
		return nil
	}
	out := make([]TileMS, len(res.SlowestTiles))
	for i, t := range res.SlowestTiles {
		out[i] = TileMS{I: t.I, J: t.J, MS: float64(t.Dur) / 1e6, Nodes: t.Nodes}
	}
	return out
}

// FillHasher accumulates the FNV-1a fill hash in benchchip's byte layout
// (little-endian col then row, 16 bytes per fill). Create with
// NewFillHasher; the coordinator uses the same type to hash the merged fill
// stream, so worker and gather hashes are one implementation.
type FillHasher struct {
	h   hash.Hash64
	buf [16]byte
	n   int
}

// NewFillHasher returns an empty hasher.
func NewFillHasher() *FillHasher { return &FillHasher{h: fnv.New64a()} }

// Add hashes one fill site.
func (fh *FillHasher) Add(col, row int) {
	binary.LittleEndian.PutUint64(fh.buf[0:8], uint64(int64(col)))
	binary.LittleEndian.PutUint64(fh.buf[8:16], uint64(int64(row)))
	fh.h.Write(fh.buf[:])
	fh.n++
}

// Sum returns the hash in the "%016x" form benchchip reports.
func (fh *FillHasher) Sum() string { return fmt.Sprintf("%016x", fh.h.Sum64()) }

// Count returns how many fills were hashed.
func (fh *FillHasher) Count() int { return fh.n }

// validateRegion checks a RegionSpec's internal consistency so malformed
// scatter requests fail with 400 instead of a Failed job.
func validateRegion(spec *RegionSpec) (layout.FillRule, error) {
	rule := layout.FillRule{Feature: spec.RuleFeatureNM, Gap: spec.RuleGapNM, Buffer: spec.RuleBufferNM}
	if err := rule.Validate(); err != nil {
		return rule, fmt.Errorf("region rule: %w", err)
	}
	if spec.R < 1 || spec.WindowNM <= 0 || spec.WindowNM%int64(spec.R) != 0 {
		return rule, fmt.Errorf("region dissection window %d / r %d invalid", spec.WindowNM, spec.R)
	}
	if spec.I1 <= spec.I0 || spec.J1 <= spec.J0 {
		return rule, fmt.Errorf("region owned rect [%d,%d)x[%d,%d) is empty", spec.I0, spec.I1, spec.J0, spec.J1)
	}
	if want := (spec.I1 - spec.I0) * (spec.J1 - spec.J0); len(spec.Budget) != want {
		return rule, fmt.Errorf("region budget has %d entries, owned rect has %d tiles", len(spec.Budget), want)
	}
	return rule, nil
}

// regionTask builds the queue task for a region job. It mirrors defaultTask's
// validate-up-front shape but drives core.Engine directly: the budget comes
// from the coordinator (computed once for the whole chip), so the session
// layer's own density budgeting must not run.
func regionTask(req *SubmitRequest, queueWorkers int, progressTiles *obs.Counter) (jobqueue.Task, error) {
	m, ok := ParseMethod(req.Method)
	if !ok {
		return nil, fmt.Errorf("unknown method %q", req.Method)
	}
	if req.DEF == "" {
		return nil, errors.New("region jobs require an inline def")
	}
	spec := *req.Region
	rule, err := validateRegion(&spec)
	if err != nil {
		return nil, err
	}
	o := req.Options
	if o.SlackDef == 0 {
		o.SlackDef = 3
	}
	if o.SlackDef < 1 || o.SlackDef > 3 {
		return nil, fmt.Errorf("slackdef %d out of range [1,3]", o.SlackDef)
	}
	o.Workers = EffectiveWorkers(o.Workers, queueWorkers)
	defText := req.DEF

	return func(ctx context.Context, setPhase func(string)) (any, error) {
		tracker := newProgressTracker(func(v any) { jobqueue.PublishProgress(ctx, v) }, progressTiles)
		setPhase = tracker.wrapSetPhase(setPhase)
		setPhase("load")
		l, err := pilfill.LoadDEF(strings.NewReader(defText))
		if err != nil {
			return nil, fmt.Errorf("load region layout: %w", err)
		}
		dis, err := layout.NewDissection(l.Die, spec.WindowNM, spec.R)
		if err != nil {
			return nil, fmt.Errorf("region dissection: %w", err)
		}
		// Owned rect in stripe-local indices; must land inside the stripe.
		li0, li1 := spec.I0-spec.TileOffI, spec.I1-spec.TileOffI
		lj0, lj1 := spec.J0-spec.TileOffJ, spec.J1-spec.TileOffJ
		if li0 < 0 || li1 > dis.NX || lj0 < 0 || lj1 > dis.NY {
			return nil, fmt.Errorf("owned rect [%d,%d)x[%d,%d) outside stripe grid %dx%d",
				li0, li1, lj0, lj1, dis.NX, dis.NY)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		setPhase("prepare")
		cfg := core.Config{
			Layer:       spec.Layer,
			Def:         pilfill.SlackDef(o.SlackDef),
			Weighted:    o.Weighted,
			Seed:        o.Seed,
			NetCap:      o.NetCapPS * 1e-12,
			DualGapTol:  o.DualGapTol,
			Workers:     o.Workers,
			Grounded:    o.Grounded,
			NoSolveMemo: o.NoSolveMemo,
			TileOffI:    spec.TileOffI,
			TileOffJ:    spec.TileOffJ,
			OnTile:      tracker.onTile,
		}
		if o.ILPNodeLimit > 0 {
			cfg.ILPOpts = ilp.Options{MaxNodes: o.ILPNodeLimit}
		}
		var tr *obs.Tracer
		if o.CollectTrace {
			tr = obs.NewTracer(0)
			cfg.Trace = tr
		}
		eng, err := core.NewEngine(l, dis, rule, cfg)
		if err != nil {
			return nil, fmt.Errorf("region engine: %w", err)
		}
		budget := make(density.Budget, dis.NX)
		for i := range budget {
			budget[i] = make([]int, dis.NY)
		}
		w := spec.J1 - spec.J0
		for i := li0; i < li1; i++ {
			for j := lj0; j < lj1; j++ {
				budget[i][j] = spec.Budget[(i-li0)*w+(j-lj0)]
			}
		}
		instances, err := eng.Instances(budget)
		if err != nil {
			return nil, fmt.Errorf("region instances: %w", err)
		}
		// Instances() is the authoritative tile count: tiles with zero budget
		// or no slack columns never become instances.
		tracker.setTotal(len(instances))
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		setPhase("solve")
		res, err := eng.RunContext(ctx, m, instances)
		if err != nil {
			return nil, err
		}
		setPhase("report")
		rep := buildRegionReport(&spec, l, res, o.Workers)
		rep.Trace = tr.Dump("pilfilld/" + spec.ID)
		return rep, nil
	}, nil
}

// buildRegionReport folds a region run into the wire payload: the standard
// top-level figures (so worker metrics and job views read normally) plus the
// RegionPayload merge inputs in chip coordinates.
func buildRegionReport(spec *RegionSpec, l *layout.Layout, res *core.Result, workers int) *ReportPayload {
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	rp := &RegionPayload{
		ID:         spec.ID,
		Tiles:      res.Tiles,
		Requested:  res.Requested,
		Placed:     res.Placed,
		ILPNodes:   res.ILPNodes,
		LPPivots:   res.LPPivots,
		Repaired:   res.IncumbentsRepaired,
		Dropped:    res.IncumbentsDropped,
		Unweighted: res.Unweighted,
		Weighted:   res.Weighted,
		Fills:      make([][2]int, 0, len(res.Fill.Fills)),
		SlowTiles:  slowTilesOf(res),
	}
	fh := NewFillHasher()
	for _, f := range res.Fill.Fills {
		col, row := f.Col+spec.ColOff, f.Row+spec.RowOff
		rp.Fills = append(rp.Fills, [2]int{col, row})
		fh.Add(col, row)
	}
	rp.FillHash = fh.Sum()
	for n, v := range res.PerNet {
		if v != 0 {
			if rp.PerNet == nil {
				rp.PerNet = make(map[string]float64)
			}
			rp.PerNet[l.Nets[n].Name] = v
		}
	}
	return &ReportPayload{
		Method:       res.Method.String(),
		Requested:    res.Requested,
		Placed:       res.Placed,
		Tiles:        res.Tiles,
		ILPNodes:     res.ILPNodes,
		LPPivots:     res.LPPivots,
		UnweightedPS: res.Unweighted * 1e12,
		WeightedPS:   res.Weighted * 1e12,
		SolveCPUMS:   ms(res.CPU),
		WallMS:       ms(res.Wall),
		Workers:      workers,
		PhasesMS: PhasesPayload{
			Preprocess: ms(res.Phases.Preprocess),
			Solve:      ms(res.Phases.Solve),
			Evaluate:   ms(res.Phases.Evaluate),
			Place:      ms(res.Phases.Place),
		},
		MemoHits:   res.MemoHits,
		MemoMisses: res.MemoMisses,
		Region:     rp,
	}
}
