package scanline

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pilfill/internal/geom"
	"pilfill/internal/layout"
)

var rule = layout.FillRule{Feature: 300, Gap: 100, Buffer: 150}

// buildLayout makes a single-layer layout with the given horizontal wires
// (each its own net, driven from the left end).
func buildLayout(die geom.Rect, wires []geom.Rect) *layout.Layout {
	l := &layout.Layout{
		Name:   "sl",
		Die:    die,
		Layers: []layout.Layer{{Name: "m3", Dir: layout.Horizontal, Width: 200}},
	}
	for _, w := range wires {
		yc := (w.Y1 + w.Y2) / 2
		width := w.Height()
		l.Nets = append(l.Nets, &layout.Net{
			Name:   "n",
			Source: layout.Pin{P: geom.Point{X: w.X1 + width/2, Y: yc}},
			Sinks:  []layout.Pin{{P: geom.Point{X: w.X2 - width/2, Y: yc}}},
			Segments: []layout.Segment{{
				Layer: 0,
				A:     geom.Point{X: w.X1 + width/2, Y: yc},
				B:     geom.Point{X: w.X2 - width/2, Y: yc},
				Width: width,
			}},
		})
	}
	return l
}

func extract(t *testing.T, l *layout.Layout, window int64, r int, def Def) ([][]TileColumns, *layout.Occupancy, *layout.Dissection) {
	t.Helper()
	d, err := layout.NewDissection(l.Die, window, r)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := layout.NewSiteGrid(l.Die, rule)
	if err != nil {
		t.Fatal(err)
	}
	occ := layout.NewOccupancy(l, grid, 0)
	tiles, err := Extract(l, 0, d, occ, def)
	if err != nil {
		t.Fatal(err)
	}
	return tiles, occ, d
}

func TestTwoLinesOneGap(t *testing.T) {
	// Two long parallel wires; between them every column is a pair-bounded
	// slack column (Fig 4's situation).
	die := geom.Rect{X1: 0, Y1: 0, X2: 16000, Y2: 16000}
	l := buildLayout(die, []geom.Rect{
		{X1: 0, Y1: 4000, X2: 16000, Y2: 4200},
		{X1: 0, Y1: 10000, X2: 16000, Y2: 10200},
	})
	tiles, _, d := extract(t, l, 16000, 2, DefIII)
	if d.NX != 2 {
		t.Fatalf("NX = %d", d.NX)
	}
	var pair, low, high, none int
	for i := range tiles {
		for j := range tiles[i] {
			for _, c := range tiles[i][j].Cols {
				switch {
				case c.HasLow && c.HasHigh:
					pair++
					if c.Spacing() != 5800 {
						t.Fatalf("pair spacing = %d, want 5800", c.Spacing())
					}
				case c.HasHigh:
					high++ // below the bottom wire
				case c.HasLow:
					low++ // above the top wire
				default:
					none++
				}
			}
		}
	}
	if pair == 0 || high == 0 || low == 0 {
		t.Errorf("pair=%d high=%d low=%d — all should be present", pair, high, low)
	}
	if none != 0 {
		t.Errorf("none=%d — with full-width wires every column has a bound", none)
	}
}

func TestDefIDropsBoundaryColumns(t *testing.T) {
	die := geom.Rect{X1: 0, Y1: 0, X2: 16000, Y2: 16000}
	l := buildLayout(die, []geom.Rect{
		{X1: 0, Y1: 4000, X2: 16000, Y2: 4200},
		{X1: 0, Y1: 10000, X2: 16000, Y2: 10200},
	})
	tiles, _, _ := extract(t, l, 16000, 2, DefI)
	for i := range tiles {
		for j := range tiles[i] {
			for _, c := range tiles[i][j].Cols {
				if !c.HasLow || !c.HasHigh {
					t.Fatalf("DefI column without both bounds: %+v", c)
				}
			}
		}
	}
	sI := Summarize(DefI, tiles)
	tiles2, _, _ := extract(t, l, 16000, 2, DefII)
	sII := Summarize(DefII, tiles2)
	tiles3, _, _ := extract(t, l, 16000, 2, DefIII)
	sIII := Summarize(DefIII, tiles3)
	// Capacity ordering: I <= II and I <= III; III attributes at least as
	// much capacity as II.
	if sI.Capacity > sII.Capacity || sI.Capacity > sIII.Capacity {
		t.Errorf("capacities I=%d II=%d III=%d", sI.Capacity, sII.Capacity, sIII.Capacity)
	}
	if sIII.Attributed < sII.Attributed {
		t.Errorf("attributed III=%d < II=%d", sIII.Attributed, sII.Attributed)
	}
}

func TestDefIIBoundaryUnattributed(t *testing.T) {
	// One wire spanning the middle of a 2x2-tiled die. In DefII, columns in
	// the tile above the wire but bounded by the tile edge get no high
	// attribution; DefIII attributes the layout boundary side as none too,
	// but crucially attributes lines in *adjacent tiles*.
	die := geom.Rect{X1: 0, Y1: 0, X2: 16000, Y2: 16000}
	l := buildLayout(die, []geom.Rect{
		{X1: 0, Y1: 7900, X2: 16000, Y2: 8100}, // wire right at the tile seam
	})
	tilesII, _, _ := extract(t, l, 8000, 1, DefII)
	tilesIII, _, _ := extract(t, l, 8000, 1, DefIII)
	sII := Summarize(DefII, tilesII)
	sIII := Summarize(DefIII, tilesIII)
	// The wire straddles the seam, so in DefII the tiles see it; but tiles
	// (0,0)/(1,0) bottom area and (0,1)/(1,1) top are boundary-bounded in
	// both definitions. Attribution must not differ by much here; the key
	// check is that DefIII never attributes less.
	if sIII.Attributed < sII.Attributed {
		t.Errorf("attributed III=%d < II=%d", sIII.Attributed, sII.Attributed)
	}
}

func TestAdjacentTileAttribution(t *testing.T) {
	// Fig 6's point: wires in adjacent tiles bound this tile's columns under
	// DefIII only. Tile column 1 (x 8000..16000) has no wires; wires live at
	// the far left and far right of the neighboring tiles.
	die := geom.Rect{X1: 0, Y1: 0, X2: 24000, Y2: 24000}
	l := buildLayout(die, []geom.Rect{
		{X1: 0, Y1: 4000, X2: 24000, Y2: 4200},
		{X1: 0, Y1: 20000, X2: 24000, Y2: 20200},
	})
	// 3x3 tiles of 8000.
	tilesII, _, _ := extract(t, l, 8000, 1, DefII)
	tilesIII, _, _ := extract(t, l, 8000, 1, DefIII)
	// Middle tile (1,1): y 8000..16000 contains no wires at all.
	midII := tilesII[1][1]
	midIII := tilesIII[1][1]
	for _, c := range midII.Cols {
		if c.HasLow || c.HasHigh {
			t.Fatalf("DefII middle tile attributed: %+v", c)
		}
	}
	attributed := 0
	for _, c := range midIII.Cols {
		if c.HasLow && c.HasHigh {
			attributed++
			if c.Spacing() != 15800 {
				t.Errorf("spacing = %d, want 15800", c.Spacing())
			}
		}
	}
	if attributed == 0 {
		t.Error("DefIII should attribute middle-tile columns to adjacent-tile wires")
	}
}

func TestCapacityExcludesBlockedSites(t *testing.T) {
	// A vertical blocker (wrong-direction segment) between two lines
	// reduces column capacity.
	die := geom.Rect{X1: 0, Y1: 0, X2: 16000, Y2: 16000}
	l := buildLayout(die, []geom.Rect{
		{X1: 0, Y1: 4000, X2: 16000, Y2: 4200},
		{X1: 0, Y1: 10000, X2: 16000, Y2: 10200},
	})
	tilesBefore, _, _ := extract(t, l, 16000, 2, DefIII)
	before := Summarize(DefIII, tilesBefore).Capacity

	l.Nets = append(l.Nets, &layout.Net{
		Name:   "v",
		Source: layout.Pin{P: geom.Point{X: 8000, Y: 4200}},
		Sinks:  []layout.Pin{{P: geom.Point{X: 8000, Y: 10000}}},
		Segments: []layout.Segment{{
			Layer: 0,
			A:     geom.Point{X: 8000, Y: 4300},
			B:     geom.Point{X: 8000, Y: 9900},
			Width: 200,
		}},
	})
	tilesAfter, _, _ := extract(t, l, 16000, 2, DefIII)
	after := Summarize(DefIII, tilesAfter).Capacity
	if after >= before {
		t.Errorf("capacity %d not reduced by blocker (was %d)", after, before)
	}
}

func TestEmptyLayoutAllBoundary(t *testing.T) {
	die := geom.Rect{X1: 0, Y1: 0, X2: 8000, Y2: 8000}
	l := buildLayout(die, nil)
	tiles, occ, _ := extract(t, l, 4000, 2, DefIII)
	s := Summarize(DefIII, tiles)
	if s.Attributed != 0 {
		t.Errorf("attributed = %d on empty layout", s.Attributed)
	}
	if s.Capacity == 0 {
		t.Error("empty layout should have slack capacity")
	}
	if s.Capacity > occ.FreeSites() {
		t.Errorf("capacity %d exceeds free sites %d", s.Capacity, occ.FreeSites())
	}
}

func TestBadDef(t *testing.T) {
	die := geom.Rect{X1: 0, Y1: 0, X2: 8000, Y2: 8000}
	l := buildLayout(die, nil)
	d, _ := layout.NewDissection(die, 4000, 2)
	grid, _ := layout.NewSiteGrid(die, rule)
	occ := layout.NewOccupancy(l, grid, 0)
	if _, err := Extract(l, 0, d, occ, Def(9)); err == nil {
		t.Error("bad def accepted")
	}
}

// bruteCapacity computes, independently of the sweep, the DefIII capacity
// of each (tile, site column): free sites whose feature square fits fully
// inside the merged-line gap at that column, clipped to the tile.
func bruteCapacity(l *layout.Layout, d *layout.Dissection, occ *layout.Occupancy) map[[3]int]int {
	grid := occ.Grid
	lines := l.HLines(0)
	out := map[[3]int]int{}
	for c := 0; c < grid.Cols; c++ {
		fx1 := grid.SiteX(c)
		fx2 := fx1 + grid.Rule.Feature
		// Line y-intervals covering this column, merged.
		var ivs [][2]int64
		for _, ln := range lines {
			x1, x2 := ln.X1, ln.X2
			if x1 < d.Die.X1 {
				x1 = d.Die.X1
			}
			if x2 > d.Die.X2 {
				x2 = d.Die.X2
			}
			if geom.Overlap(x1, x2, fx1, fx2) > 0 {
				ivs = append(ivs, [2]int64{ln.YBot, ln.YTop})
			}
		}
		sort.Slice(ivs, func(a, b int) bool { return ivs[a][0] < ivs[b][0] })
		var merged [][2]int64
		for _, iv := range ivs {
			if n := len(merged); n > 0 && iv[0] <= merged[n-1][1] {
				if iv[1] > merged[n-1][1] {
					merged[n-1][1] = iv[1]
				}
			} else {
				merged = append(merged, iv)
			}
		}
		// Gaps between merged intervals (and boundaries), clipped to die.
		var gaps [][2]int64
		prev := d.Die.Y1
		for _, iv := range merged {
			lo, hi := iv[0], iv[1]
			if lo > prev {
				gaps = append(gaps, [2]int64{prev, lo})
			}
			if hi > prev {
				prev = hi
			}
		}
		if d.Die.Y2 > prev {
			gaps = append(gaps, [2]int64{prev, d.Die.Y2})
		}
		xc := fx1 + grid.Rule.Feature/2
		ti, _ := d.TileIndex(xc, d.Die.Y1)
		for _, gp := range gaps {
			for r := 0; r < grid.Rows; r++ {
				y1 := grid.SiteY(r)
				y2 := y1 + grid.Rule.Feature
				if y1 < gp[0] || y2 > gp[1] || occ.Blocked(c, r) {
					continue
				}
				// Which tile's clip contains this site fully?
				_, tj := d.TileIndex(d.Die.X1, (y1+y2)/2)
				tr := d.TileRect(ti, tj)
				if y1 >= tr.Y1 && y2 <= tr.Y2 {
					out[[3]int{ti, tj, c}]++
				}
			}
		}
	}
	return out
}

func TestQuickDefIIIMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		die := geom.Rect{X1: 0, Y1: 0, X2: 16000, Y2: 16000}
		var wires []geom.Rect
		for i := 0; i < 1+rng.Intn(6); i++ {
			y := int64(500 + rng.Intn(14000))
			x1 := int64(rng.Intn(8000))
			x2 := x1 + 2000 + int64(rng.Intn(6000))
			if x2 > 15800 {
				x2 = 15800
			}
			wires = append(wires, geom.Rect{X1: x1, Y1: y, X2: x2, Y2: y + 200})
		}
		l := buildLayout(die, wires)
		d, err := layout.NewDissection(die, 8000, 2)
		if err != nil {
			return false
		}
		grid, err := layout.NewSiteGrid(die, rule)
		if err != nil {
			return false
		}
		occ := layout.NewOccupancy(l, grid, 0)
		tiles, err := Extract(l, 0, d, occ, DefIII)
		if err != nil {
			return false
		}
		got := map[[3]int]int{}
		for i := range tiles {
			for j := range tiles[i] {
				for _, c := range tiles[i][j].Cols {
					got[[3]int{i, j, c.Col}] += c.Capacity
				}
			}
		}
		want := bruteCapacity(l, d, occ)
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCapacityNeverExceedsFreeSites guards double counting across
// definitions and tiles.
func TestQuickCapacityNeverExceedsFreeSites(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		die := geom.Rect{X1: 0, Y1: 0, X2: 16000, Y2: 16000}
		var wires []geom.Rect
		for i := 0; i < rng.Intn(8); i++ {
			y := int64(500 + rng.Intn(14000))
			x1 := int64(rng.Intn(10000))
			wires = append(wires, geom.Rect{X1: x1, Y1: y, X2: x1 + 3000, Y2: y + 200})
		}
		l := buildLayout(die, wires)
		d, _ := layout.NewDissection(die, 4000, 2)
		grid, _ := layout.NewSiteGrid(die, rule)
		occ := layout.NewOccupancy(l, grid, 0)
		for _, def := range []Def{DefI, DefII, DefIII} {
			tiles, err := Extract(l, 0, d, occ, def)
			if err != nil {
				return false
			}
			if Summarize(def, tiles).Capacity > occ.FreeSites() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExtractDefIII(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	die := geom.Rect{X1: 0, Y1: 0, X2: 64000, Y2: 64000}
	var wires []geom.Rect
	for i := 0; i < 120; i++ {
		y := int64(500 + rng.Intn(62000))
		x1 := int64(rng.Intn(40000))
		wires = append(wires, geom.Rect{X1: x1, Y1: y, X2: x1 + 20000, Y2: y + 200})
	}
	l := buildLayout(die, wires)
	d, _ := layout.NewDissection(die, 16000, 4)
	grid, _ := layout.NewSiteGrid(die, rule)
	occ := layout.NewOccupancy(l, grid, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(l, 0, d, occ, DefIII); err != nil {
			b.Fatal(err)
		}
	}
}
