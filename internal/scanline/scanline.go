// Package scanline extracts slack site columns — the decision variables of
// the MDFC PIL-Fill problem — from a routed layout, implementing the
// scan-line algorithm of Fig 7 of the paper and its three slack-column
// definitions (Figs 4–6):
//
//   - DefI captures only columns between pairs of active lines inside the
//     tile; slack adjacent to tile boundaries is unusable.
//   - DefII adds columns bounded by tile boundaries, but attributes no
//     active line (and hence no delay cost) to the boundary side — the
//     inaccuracy the paper points out for blocks like its Fig 5 "B".
//   - DefIII sweeps the whole layout, so a column is always bounded by the
//     nearest active lines even when they live in adjacent tiles, or by the
//     layout boundary; this is the most accurate definition.
//
// The routing direction is assumed horizontal (the paper's WLOG choice);
// columns are vertical runs of free fill sites between two horizontal
// bounds.
package scanline

import (
	"fmt"

	"pilfill/internal/geom"
	"pilfill/internal/layout"
)

// Def selects a slack-column definition.
type Def int

// Slack-column definitions, in increasing order of modeling accuracy.
const (
	DefI Def = iota + 1
	DefII
	DefIII
)

// String names the definition.
func (d Def) String() string {
	switch d {
	case DefI:
		return "SlackColumn-I"
	case DefII:
		return "SlackColumn-II"
	case DefIII:
		return "SlackColumn-III"
	}
	return fmt.Sprintf("Def(%d)", int(d))
}

// Column is one slack site column within a tile: a vertical run of fill
// sites at site-column index Col, bounded below and above by active lines or
// by a boundary.
type Column struct {
	Col      int   // site column index in the global grid
	X        int64 // center X of the column's sites
	YLo, YHi int64 // the gap's vertical extent (drawn edges of the bounds)
	Capacity int   // free sites available within this tile's part of the gap
	RowLo    int   // first candidate site row (inclusive) within the tile
	RowHi    int   // last candidate site row (exclusive)

	// HasLow/HasHigh report whether an active line bounds the gap on that
	// side (false = tile or layout boundary, depending on the definition).
	HasLow, HasHigh bool
	Low, High       layout.SegRef // valid when the corresponding Has* is true
}

// Spacing returns the line-pair distance d used by the capacitance model.
func (c *Column) Spacing() int64 { return c.YHi - c.YLo }

// TileColumns is the per-tile result: the columns overlapping tile (I, J).
type TileColumns struct {
	I, J int
	Rect geom.Rect
	Cols []Column
}

// TotalCapacity sums the capacities of the tile's columns.
func (tc *TileColumns) TotalCapacity() int {
	n := 0
	for i := range tc.Cols {
		n += tc.Cols[i].Capacity
	}
	return n
}

// gap is an intermediate sweep artifact: an open vertical interval at one
// site column.
type gap struct {
	col      int
	yLo, yHi int64
	lowIdx   int // index into the sweep's line list, -1 = boundary
	highIdx  int
}

// sweep runs the Fig 7 scan over the given horizontal lines within region,
// producing all vertical gaps per site column. Lines must be sorted by YBot
// (layout.HLines guarantees this). Line extents are clipped to the region.
func sweep(lines []layout.HLine, grid *layout.SiteGrid, region geom.Rect) []gap {
	cLo, cHi := grid.ColRange(region.X1, region.X2)
	n := cHi - cLo
	if n <= 0 {
		return nil
	}
	openStart := make([]int64, n)
	openLow := make([]int, n)
	for i := range openStart {
		openStart[i] = region.Y1
		openLow[i] = -1
	}
	var gaps []gap
	for li, ln := range lines {
		yBot, yTop := ln.YBot, ln.YTop
		if yTop <= region.Y1 || yBot >= region.Y2 {
			continue
		}
		if yBot < region.Y1 {
			yBot = region.Y1
		}
		if yTop > region.Y2 {
			yTop = region.Y2
		}
		x1, x2 := ln.X1, ln.X2
		if x1 < region.X1 {
			x1 = region.X1
		}
		if x2 > region.X2 {
			x2 = region.X2
		}
		if x1 >= x2 {
			continue
		}
		gLo, gHi := grid.ColRange(x1, x2)
		for c := gLo; c < gHi; c++ {
			k := c - cLo
			if yBot > openStart[k] {
				gaps = append(gaps, gap{col: c, yLo: openStart[k], yHi: yBot, lowIdx: openLow[k], highIdx: li})
			}
			if yTop > openStart[k] {
				openStart[k] = yTop
				openLow[k] = li
			}
		}
	}
	for c := cLo; c < cHi; c++ {
		k := c - cLo
		if region.Y2 > openStart[k] {
			gaps = append(gaps, gap{col: c, yLo: openStart[k], yHi: region.Y2, lowIdx: openLow[k], highIdx: -1})
		}
	}
	return gaps
}

// fullRows returns the half-open row range of sites whose feature squares
// lie fully inside [yLo, yHi).
func fullRows(grid *layout.SiteGrid, yLo, yHi int64) (lo, hi int) {
	p := grid.Rule.Pitch()
	f := grid.Rule.Feature
	// Smallest r with SiteY(r) >= yLo.
	lo64 := ceilDiv(yLo-grid.Die.Y1, p)
	// Smallest r with SiteY(r)+f > yHi, i.e. r*p > yHi - Y1 - f.
	hi64 := floorDiv(yHi-grid.Die.Y1-f, p) + 1
	lo = clamp(lo64, grid.Rows)
	hi = clamp(hi64, grid.Rows)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func clamp(v int64, n int) int {
	if v < 0 {
		return 0
	}
	if v > int64(n) {
		return n
	}
	return int(v)
}

// Extract computes the slack columns of every tile under the chosen
// definition. The returned slice is indexed [i][j] like the dissection's
// tiles. Capacity counts only sites that are free in occ and fully inside
// both the gap and the tile.
func Extract(l *layout.Layout, layer int, d *layout.Dissection, occ *layout.Occupancy, def Def) ([][]TileColumns, error) {
	if def != DefI && def != DefII && def != DefIII {
		return nil, fmt.Errorf("scanline: unknown definition %d", int(def))
	}
	grid := occ.Grid
	out := make([][]TileColumns, d.NX)
	for i := range out {
		out[i] = make([]TileColumns, d.NY)
		for j := range out[i] {
			out[i][j] = TileColumns{I: i, J: j, Rect: d.TileRect(i, j)}
		}
	}
	lines := l.HLines(layer)

	appendGap := func(tc *TileColumns, g gap, lines []layout.HLine) {
		// Clip the gap to the tile vertically; capacity comes from sites
		// fully inside the clipped interval.
		yLo, yHi := g.yLo, g.yHi
		if yLo < tc.Rect.Y1 {
			yLo = tc.Rect.Y1
		}
		if yHi > tc.Rect.Y2 {
			yHi = tc.Rect.Y2
		}
		if yLo >= yHi {
			return
		}
		rLo, rHi := fullRows(grid, yLo, yHi)
		if rLo >= rHi {
			return
		}
		capacity := occ.FreeInColumn(g.col, rLo, rHi)
		if capacity == 0 {
			return
		}
		col := Column{
			Col:      g.col,
			X:        grid.SiteCenterX(g.col),
			YLo:      g.yLo,
			YHi:      g.yHi,
			Capacity: capacity,
			RowLo:    rLo,
			RowHi:    rHi,
		}
		if g.lowIdx >= 0 {
			col.HasLow = true
			col.Low = lines[g.lowIdx].Ref
		}
		if g.highIdx >= 0 {
			col.HasHigh = true
			col.High = lines[g.highIdx].Ref
		}
		tc.Cols = append(tc.Cols, col)
	}

	switch def {
	case DefIII:
		gaps := sweep(lines, grid, d.Die)
		for _, g := range gaps {
			// A gap's sites live in one tile column (the tile containing the
			// site centers) but the gap may span several tiles vertically;
			// clip it into each.
			xc := grid.SiteX(g.col) + grid.Rule.Feature/2
			iTile, _ := d.TileIndex(xc, d.Die.Y1)
			_, j1 := d.TileIndex(d.Die.X1, clampY(g.yLo, d.Die))
			_, j2 := d.TileIndex(d.Die.X1, clampY(g.yHi-1, d.Die))
			for j := j1; j <= j2; j++ {
				appendGap(&out[iTile][j], g, lines)
			}
		}
	case DefI, DefII:
		// Bucket lines per tile column/row span, then sweep each tile with
		// only its own lines.
		type refList []int
		buckets := make([][]refList, d.NX)
		for i := range buckets {
			buckets[i] = make([]refList, d.NY)
		}
		for li, ln := range lines {
			r := geom.Rect{X1: ln.X1, Y1: ln.YBot, X2: ln.X2, Y2: ln.YTop}.Intersect(d.Die)
			if r.Empty() {
				continue
			}
			i1, j1 := d.TileIndex(r.X1, r.Y1)
			i2, j2 := d.TileIndex(r.X2-1, r.Y2-1)
			for i := i1; i <= i2; i++ {
				for j := j1; j <= j2; j++ {
					buckets[i][j] = append(buckets[i][j], li)
				}
			}
		}
		for i := 0; i < d.NX; i++ {
			for j := 0; j < d.NY; j++ {
				tileRect := out[i][j].Rect
				tileLines := make([]layout.HLine, 0, len(buckets[i][j]))
				for _, li := range buckets[i][j] {
					tileLines = append(tileLines, lines[li])
				}
				gaps := sweep(tileLines, grid, tileRect)
				for _, g := range gaps {
					if def == DefI && (g.lowIdx < 0 || g.highIdx < 0) {
						continue // boundary-bounded slack is unusable in Def I
					}
					appendGap(&out[i][j], g, tileLines)
				}
			}
		}
	}
	return out, nil
}

// clampY restricts y into the die's vertical extent (half-open).
func clampY(y int64, die geom.Rect) int64 {
	if y < die.Y1 {
		return die.Y1
	}
	if y >= die.Y2 {
		return die.Y2 - 1
	}
	return y
}

// Stats summarizes an extraction: total columns, total capacity, and how
// much capacity is attributed to at least one active line (the figure 4–6
// analog metric).
type Stats struct {
	Def        Def
	Columns    int
	Capacity   int
	Attributed int // capacity in columns with >= 1 bounding active line
	PairBound  int // capacity in columns with both bounds active lines
}

// Summarize computes extraction statistics over all tiles.
func Summarize(def Def, tiles [][]TileColumns) Stats {
	s := Stats{Def: def}
	for i := range tiles {
		for j := range tiles[i] {
			for k := range tiles[i][j].Cols {
				c := &tiles[i][j].Cols[k]
				s.Columns++
				s.Capacity += c.Capacity
				if c.HasLow || c.HasHigh {
					s.Attributed += c.Capacity
				}
				if c.HasLow && c.HasHigh {
					s.PairBound += c.Capacity
				}
			}
		}
	}
	return s
}
