package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(10, 20, 5, 2)
	want := Rect{5, 2, 10, 20}
	if r != want {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
}

func TestRectEmpty(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 0, 0}, true},
		{Rect{0, 0, 1, 0}, true},
		{Rect{0, 0, 0, 1}, true},
		{Rect{0, 0, 1, 1}, false},
		{Rect{5, 5, 3, 8}, true},
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRectArea(t *testing.T) {
	if got := (Rect{0, 0, 10, 20}).Area(); got != 200 {
		t.Errorf("Area = %d, want 200", got)
	}
	if got := (Rect{0, 0, -1, 5}).Area(); got != 0 {
		t.Errorf("empty Area = %d, want 0", got)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(0, 0) {
		t.Error("low corner should be inside (half-open)")
	}
	if r.Contains(10, 10) {
		t.Error("high corner should be outside (half-open)")
	}
	if r.Contains(5, 10) || r.Contains(10, 5) {
		t.Error("high edges should be outside")
	}
	if !r.Contains(9, 9) {
		t.Error("(9,9) should be inside")
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	// Touching rectangles share no area under the half-open convention.
	c := Rect{10, 0, 20, 10}
	if !a.Intersect(c).Empty() {
		t.Error("touching rects should not intersect")
	}
	if a.Overlaps(c) {
		t.Error("Overlaps should be false for touching rects")
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{5, 5, 6, 7}
	got := a.Union(b)
	want := Rect{0, 0, 6, 7}
	if got != want {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	if a.Union(Rect{}) != a {
		t.Error("union with empty should be identity")
	}
	if (Rect{}).Union(b) != b {
		t.Error("union of empty with b should be b")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{10, 10, 20, 20}
	if got, want := r.Expand(2), (Rect{8, 8, 22, 22}); got != want {
		t.Errorf("Expand(2) = %v, want %v", got, want)
	}
	if !r.Expand(-5).Empty() {
		t.Error("over-shrinking should produce an empty rect")
	}
}

func TestRectTranslate(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	if got, want := r.Translate(10, -2), (Rect{11, 0, 13, 2}); got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{0, 0, 100, 100}
	if !outer.ContainsRect(Rect{0, 0, 100, 100}) {
		t.Error("rect should contain itself")
	}
	if !outer.ContainsRect(Rect{10, 10, 20, 20}) {
		t.Error("inner rect should be contained")
	}
	if outer.ContainsRect(Rect{90, 90, 110, 110}) {
		t.Error("overflowing rect should not be contained")
	}
	if !outer.ContainsRect(Rect{}) {
		t.Error("empty rect is contained in everything")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{3, 8}
	if iv.Len() != 5 {
		t.Errorf("Len = %d, want 5", iv.Len())
	}
	if !iv.Contains(3) || iv.Contains(8) {
		t.Error("half-open containment violated")
	}
	got := iv.Intersect(Interval{5, 12})
	if got != (Interval{5, 8}) {
		t.Errorf("Intersect = %v, want {5 8}", got)
	}
	if !iv.Intersect(Interval{8, 12}).Empty() {
		t.Error("touching intervals should not intersect")
	}
	if (Interval{5, 5}).Len() != 0 {
		t.Error("empty interval should have zero length")
	}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		a1, a2, b1, b2, want int64
	}{
		{0, 10, 5, 15, 5},
		{0, 10, 10, 20, 0},
		{0, 10, -5, 3, 3},
		{0, 10, 2, 4, 2},
		{4, 4, 0, 10, 0},
	}
	for _, c := range cases {
		if got := Overlap(c.a1, c.a2, c.b1, c.b2); got != c.want {
			t.Errorf("Overlap(%d,%d,%d,%d) = %d, want %d", c.a1, c.a2, c.b1, c.b2, got, c.want)
		}
	}
}

// randRect produces rectangles with small coordinates so intersections and
// unions are exercised densely.
func randRect(r *rand.Rand) Rect {
	return NewRect(r.Int63n(40)-20, r.Int63n(40)-20, r.Int63n(40)-20, r.Int63n(40)-20)
}

func TestQuickIntersectCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		return a.Intersect(b) == b.Intersect(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectionWithinBoth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		in := a.Intersect(b)
		return a.ContainsRect(in) && b.ContainsRect(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAreaInclusionExclusionBound(t *testing.T) {
	// area(a) + area(b) >= area(a ∩ b), and intersection area is never
	// larger than either operand's area.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		in := a.Intersect(b).Area()
		return in <= a.Area() && in <= b.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapMatchesIntervalIntersect(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		lo1, hi1 := int64(a1), int64(a2)
		if lo1 > hi1 {
			lo1, hi1 = hi1, lo1
		}
		lo2, hi2 := int64(b1), int64(b2)
		if lo2 > hi2 {
			lo2, hi2 = hi2, lo2
		}
		iv := Interval{lo1, hi1}.Intersect(Interval{lo2, hi2})
		return Overlap(lo1, hi1, lo2, hi2) == iv.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
