// Package geom provides the integer geometry primitives used throughout the
// fill-synthesis pipeline: points, closed-open rectangles, and 1-D intervals,
// all in integer layout units (nanometers by convention).
//
// Rectangles are half-open on the high side: a point (x, y) is inside
// Rect{X1, Y1, X2, Y2} iff X1 <= x < X2 and Y1 <= y < Y2. This makes
// adjacent tiles partition the plane without double counting.
package geom

import "fmt"

// Point is a location in integer layout units.
type Point struct {
	X, Y int64
}

// Rect is an axis-aligned rectangle, half-open: [X1, X2) x [Y1, Y2).
// A Rect with X2 <= X1 or Y2 <= Y1 is empty.
type Rect struct {
	X1, Y1, X2, Y2 int64
}

// NewRect returns the rectangle spanning the two corner points, normalizing
// the coordinate order so that X1 <= X2 and Y1 <= Y2.
func NewRect(x1, y1, x2, y2 int64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{x1, y1, x2, y2}
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.X2 <= r.X1 || r.Y2 <= r.Y1 }

// Width returns the horizontal extent of r (0 for empty rectangles).
func (r Rect) Width() int64 {
	if r.X2 <= r.X1 {
		return 0
	}
	return r.X2 - r.X1
}

// Height returns the vertical extent of r (0 for empty rectangles).
func (r Rect) Height() int64 {
	if r.Y2 <= r.Y1 {
		return 0
	}
	return r.Y2 - r.Y1
}

// Area returns the area of r in square layout units.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y int64) bool {
	return x >= r.X1 && x < r.X2 && y >= r.Y1 && y < r.Y2
}

// ContainsRect reports whether s lies entirely inside r.
// An empty s is contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X1 >= r.X1 && s.X2 <= r.X2 && s.Y1 >= r.Y1 && s.Y2 <= r.Y2
}

// Intersect returns the intersection of r and s; the result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X1: max64(r.X1, s.X1),
		Y1: max64(r.Y1, s.Y1),
		X2: min64(r.X2, s.X2),
		Y2: min64(r.Y2, s.Y2),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle containing both r and s.
// If either is empty, the other is returned.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X1: min64(r.X1, s.X1),
		Y1: min64(r.Y1, s.Y1),
		X2: max64(r.X2, s.X2),
		Y2: max64(r.Y2, s.Y2),
	}
}

// Expand grows r by d on every side (shrinks for negative d). The result may
// be empty after shrinking.
func (r Rect) Expand(d int64) Rect {
	out := Rect{r.X1 - d, r.Y1 - d, r.X2 + d, r.Y2 + d}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int64) Rect {
	return Rect{r.X1 + dx, r.Y1 + dy, r.X2 + dx, r.Y2 + dy}
}

// String renders r as "[x1,y1 x2,y2]".
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.X1, r.Y1, r.X2, r.Y2)
}

// Interval is a half-open 1-D span [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Empty reports whether iv spans no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns the length of iv (0 if empty).
func (iv Interval) Len() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Intersect returns the overlap of iv and other (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	out := Interval{max64(iv.Lo, other.Lo), min64(iv.Hi, other.Hi)}
	if out.Empty() {
		return Interval{}
	}
	return out
}

// Contains reports whether x lies in iv.
func (iv Interval) Contains(x int64) bool { return x >= iv.Lo && x < iv.Hi }

// Overlap returns the length of the intersection of [a1,a2) and [b1,b2).
func Overlap(a1, a2, b1, b2 int64) int64 {
	lo := max64(a1, b1)
	hi := min64(a2, b2)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
