package svg

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"pilfill/internal/geom"
	"pilfill/internal/layout"
)

func testLayout() *layout.Layout {
	return &layout.Layout{
		Name: "svg",
		Die:  geom.Rect{X1: 0, Y1: 0, X2: 20000, Y2: 10000},
		Layers: []layout.Layer{
			{Name: "m3", Dir: layout.Horizontal, Width: 200},
			{Name: "m4", Dir: layout.Vertical, Width: 200},
		},
		Nets: []*layout.Net{{
			Name:   "n",
			Source: layout.Pin{P: geom.Point{X: 1000, Y: 5000}},
			Sinks:  []layout.Pin{{P: geom.Point{X: 18000, Y: 5000}}},
			Segments: []layout.Segment{
				{Layer: 0, A: geom.Point{X: 1000, Y: 5000}, B: geom.Point{X: 18000, Y: 5000}, Width: 200},
				{Layer: 1, A: geom.Point{X: 9000, Y: 2000}, B: geom.Point{X: 9000, Y: 5000}, Width: 200},
			},
		}},
	}
}

// countRects parses the SVG as XML and counts rect elements, proving the
// output is well formed.
func countRects(t *testing.T, data []byte) int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	count := 0
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("invalid XML: %v", err)
		}
		if se, ok := tok.(xml.StartElement); ok && se.Name.Local == "rect" {
			count++
		}
	}
	return count
}

func TestWriteBareLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testLayout(), nil, Options{}); err != nil {
		t.Fatal(err)
	}
	// Background + 2 wires.
	if got := countRects(t, buf.Bytes()); got != 3 {
		t.Errorf("rects = %d, want 3", got)
	}
	if !strings.Contains(buf.String(), `id="layer-m3"`) {
		t.Error("missing layer group")
	}
}

func TestWriteWithFillAndTiles(t *testing.T) {
	l := testLayout()
	grid, err := layout.NewSiteGrid(l.Die, layout.FillRule{Feature: 400, Gap: 400, Buffer: 200})
	if err != nil {
		t.Fatal(err)
	}
	fs := &layout.FillSet{Grid: grid, Layer: 0, Fills: []layout.Fill{{Col: 1, Row: 1}, {Col: 3, Row: 4}}}
	d, err := layout.NewDissection(l.Die, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, l, fs, Options{ShowTiles: d, WidthPx: 400}); err != nil {
		t.Fatal(err)
	}
	// Background + 2 wires + 2 fills + 8x4 tiles.
	want := 1 + 2 + 2 + d.NX*d.NY
	if got := countRects(t, buf.Bytes()); got != want {
		t.Errorf("rects = %d, want %d", got, want)
	}
	if !strings.Contains(buf.String(), `id="fill"`) || !strings.Contains(buf.String(), `id="tiles"`) {
		t.Error("missing fill/tiles groups")
	}
}

func TestAspectRatioPreserved(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testLayout(), nil, Options{WidthPx: 1000}); err != nil {
		t.Fatal(err)
	}
	// 20000 x 10000 die at width 1000 -> height 500.
	if !strings.Contains(buf.String(), `width="1000" height="500"`) {
		t.Errorf("aspect not preserved: %s", buf.String()[:120])
	}
}

func TestCustomColors(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, testLayout(), nil, Options{
		LayerColors: map[int]string{0: "#123456"},
		FillColor:   "#abcdef",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#123456") {
		t.Error("custom layer color not used")
	}
}

func TestEmptyDieRejected(t *testing.T) {
	l := &layout.Layout{Name: "e"}
	if err := Write(&bytes.Buffer{}, l, nil, Options{}); err == nil {
		t.Error("empty die accepted")
	}
}
