// Package svg renders layouts and fill placements as standalone SVG images
// for inspection and documentation: wires per layer in distinct colors,
// fill features in a contrasting tone, and an optional tile grid overlay.
package svg

import (
	"bufio"
	"fmt"
	"io"

	"pilfill/internal/geom"
	"pilfill/internal/layout"
)

// Options controls the rendering.
type Options struct {
	// WidthPx is the output image width in pixels (height follows the die's
	// aspect ratio). 0 means 800.
	WidthPx int
	// ShowTiles overlays the dissection's tile grid when non-nil.
	ShowTiles *layout.Dissection
	// LayerColors maps layer index to a CSS color; missing layers cycle
	// through a default palette.
	LayerColors map[int]string
	// FillColor renders fill features; empty means "#e0b040".
	FillColor string
}

var defaultPalette = []string{"#3b6fb6", "#b63b3b", "#3bb66f", "#8a3bb6", "#b6973b"}

func (o *Options) layerColor(layer int) string {
	if c, ok := o.LayerColors[layer]; ok {
		return c
	}
	return defaultPalette[layer%len(defaultPalette)]
}

// Write renders the layout (and optional fill) as an SVG document.
func Write(w io.Writer, l *layout.Layout, fill *layout.FillSet, opts Options) error {
	if l.Die.Empty() {
		return fmt.Errorf("svg: empty die")
	}
	if opts.WidthPx <= 0 {
		opts.WidthPx = 800
	}
	if opts.FillColor == "" {
		opts.FillColor = "#e0b040"
	}
	scale := float64(opts.WidthPx) / float64(l.Die.Width())
	heightPx := int(float64(l.Die.Height()) * scale)

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.WidthPx, heightPx, opts.WidthPx, heightPx)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="#101418"/>`+"\n", opts.WidthPx, heightPx)

	// SVG's y axis points down; layout's points up. Flip via the die height.
	emit := func(r geom.Rect, color string, opacity float64) {
		x := float64(r.X1-l.Die.X1) * scale
		y := float64(l.Die.Y2-r.Y2) * scale
		fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f"/>`+"\n",
			x, y, float64(r.Width())*scale, float64(r.Height())*scale, color, opacity)
	}

	for li := range l.Layers {
		fmt.Fprintf(bw, `<g id="layer-%s">`+"\n", l.Layers[li].Name)
		for _, n := range l.Nets {
			for _, s := range n.Segments {
				if s.Layer == li {
					emit(s.Rect(), opts.layerColor(li), 0.9)
				}
			}
		}
		fmt.Fprintln(bw, `</g>`)
	}

	if fill != nil && len(fill.Fills) > 0 {
		fmt.Fprintln(bw, `<g id="fill">`)
		for _, f := range fill.Fills {
			emit(fill.Grid.SiteRect(f.Col, f.Row), opts.FillColor, 0.8)
		}
		fmt.Fprintln(bw, `</g>`)
	}

	if d := opts.ShowTiles; d != nil {
		fmt.Fprintln(bw, `<g id="tiles" stroke="#ffffff" stroke-opacity="0.25" fill="none">`)
		for i := 0; i < d.NX; i++ {
			for j := 0; j < d.NY; j++ {
				r := d.TileRect(i, j)
				x := float64(r.X1-l.Die.X1) * scale
				y := float64(l.Die.Y2-r.Y2) * scale
				fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f"/>`+"\n",
					x, y, float64(r.Width())*scale, float64(r.Height())*scale)
			}
		}
		fmt.Fprintln(bw, `</g>`)
	}

	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}
