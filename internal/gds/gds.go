// Package gds writes and reads the subset of the GDSII Stream format needed
// to export filled layouts: one library, one structure, BOUNDARY elements
// (axis-aligned rectangles) on integer layer numbers. The record framing,
// data types, and the 8-byte excess-64 floating point encoding follow the
// Calma GDSII Stream Format specification, release 6.
package gds

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pilfill/internal/geom"
)

// Record types used by this subset.
const (
	recHEADER   = 0x0002
	recBGNLIB   = 0x0102
	recLIBNAME  = 0x0206
	recUNITS    = 0x0305
	recENDLIB   = 0x0400
	recBGNSTR   = 0x0502
	recSTRNAME  = 0x0606
	recENDSTR   = 0x0700
	recBOUNDARY = 0x0800
	recLAYER    = 0x0D02
	recDATATYPE = 0x0E02
	recXY       = 0x1003
	recENDEL    = 0x1100
)

// Shape is one rectangle on a layer.
type Shape struct {
	Layer    int16
	Datatype int16
	Rect     geom.Rect
}

// Library is a minimal GDSII design: a single structure full of rectangles.
// UserUnit is the size of one database unit in user units and MetersPerDBU
// its physical size; the pipeline writes 1 dbu = 1 nm.
type Library struct {
	Name         string
	StructName   string
	UserUnit     float64 // user units per dbu (0.001 = dbu is a thousandth of a micron)
	MetersPerDBU float64 // meters per dbu (1e-9 for nm)
	Shapes       []Shape
}

// DefaultUnits configures 1 dbu = 1 nm with microns as the user unit.
func (l *Library) defaults() {
	if l.UserUnit == 0 {
		l.UserUnit = 1e-3
	}
	if l.MetersPerDBU == 0 {
		l.MetersPerDBU = 1e-9
	}
	if l.StructName == "" {
		l.StructName = "TOP"
	}
	if l.Name == "" {
		l.Name = "LIB"
	}
}

// fixedTimestamp is written into BGNLIB/BGNSTR so output is byte-for-byte
// reproducible (GDSII requires a modification and an access time).
var fixedTimestamp = [6]int16{2003, 6, 2, 0, 0, 0} // DAC 2003

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) record(recType uint16, payload []byte) {
	if w.err != nil {
		return
	}
	length := 4 + len(payload)
	if length%2 != 0 {
		w.err = fmt.Errorf("gds: odd record length %d", length)
		return
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], uint16(length))
	binary.BigEndian.PutUint16(hdr[2:4], recType)
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
	}
}

func int16s(vals ...int16) []byte {
	out := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

func int32s(vals ...int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func gdsString(s string) []byte {
	b := []byte(s)
	if len(b)%2 != 0 {
		b = append(b, 0)
	}
	return b
}

// real8 encodes an excess-64, base-16 GDSII floating point number. Values
// outside the format's range (roughly 16^±63), NaN and infinities are errors:
// saturating them silently would write a units record wildly different from
// what the caller asked for, corrupting every coordinate in the stream for
// any reader that honors UNITS.
func real8(f float64) ([]byte, error) {
	out := make([]byte, 8)
	if f == 0 {
		return out, nil
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("gds: %v is not representable as a GDSII real", f)
	}
	sign := byte(0)
	if f < 0 {
		sign = 0x80
		f = -f
	}
	// Normalize mantissa into [1/16, 1) with exponent base 16.
	exp := 64
	for f >= 1 {
		f /= 16
		exp++
	}
	for f < 1.0/16 {
		f *= 16
		exp--
	}
	mant := uint64(math.Round(f * (1 << 56)))
	if mant >= 1<<56 {
		mant >>= 4
		exp++
	}
	if exp < 0 || exp > 127 {
		return nil, fmt.Errorf("gds: magnitude out of GDSII real range (base-16 exponent %d)", exp-64)
	}
	out[0] = sign | byte(exp)
	for i := 0; i < 7; i++ {
		out[1+i] = byte(mant >> (8 * (6 - i)))
	}
	return out, nil
}

// parseReal8 decodes an excess-64 GDSII real.
func parseReal8(b []byte) float64 {
	sign := 1.0
	if b[0]&0x80 != 0 {
		sign = -1
	}
	exp := int(b[0]&0x7F) - 64
	var mant uint64
	for i := 0; i < 7; i++ {
		mant = mant<<8 | uint64(b[1+i])
	}
	return sign * float64(mant) / math.Pow(2, 56) * math.Pow(16, float64(exp))
}

// Write emits the library as a GDSII stream.
func Write(out io.Writer, lib *Library) error {
	lib.defaults()
	w := &writer{w: bufio.NewWriter(out)}
	ts := fixedTimestamp
	w.record(recHEADER, int16s(600))
	w.record(recBGNLIB, int16s(ts[0], ts[1], ts[2], ts[3], ts[4], ts[5], ts[0], ts[1], ts[2], ts[3], ts[4], ts[5]))
	w.record(recLIBNAME, gdsString(lib.Name))
	uu, err := real8(lib.UserUnit)
	if err != nil {
		return fmt.Errorf("gds: UserUnit: %w", err)
	}
	mpd, err := real8(lib.MetersPerDBU)
	if err != nil {
		return fmt.Errorf("gds: MetersPerDBU: %w", err)
	}
	w.record(recUNITS, append(uu, mpd...))
	w.record(recBGNSTR, int16s(ts[0], ts[1], ts[2], ts[3], ts[4], ts[5], ts[0], ts[1], ts[2], ts[3], ts[4], ts[5]))
	w.record(recSTRNAME, gdsString(lib.StructName))
	for _, s := range lib.Shapes {
		r := s.Rect
		if r.Empty() {
			continue
		}
		w.record(recBOUNDARY, nil)
		w.record(recLAYER, int16s(s.Layer))
		w.record(recDATATYPE, int16s(s.Datatype))
		// Closed polygon: 5 points, first repeated last.
		w.record(recXY, int32s(
			int32(r.X1), int32(r.Y1),
			int32(r.X2), int32(r.Y1),
			int32(r.X2), int32(r.Y2),
			int32(r.X1), int32(r.Y2),
			int32(r.X1), int32(r.Y1),
		))
		w.record(recENDEL, nil)
	}
	w.record(recENDSTR, nil)
	w.record(recENDLIB, nil)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// ErrFormat reports a malformed or unsupported stream.
var ErrFormat = errors.New("gds: malformed stream")

// Read parses a stream written by Write (or any stream limited to the same
// record subset with rectangular BOUNDARY elements).
func Read(in io.Reader) (*Library, error) {
	br := bufio.NewReader(in)
	lib := &Library{}
	var cur *Shape
	sawHeader := false
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF && sawHeader {
				return nil, fmt.Errorf("%w: missing ENDLIB", ErrFormat)
			}
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		length := int(binary.BigEndian.Uint16(hdr[0:2]))
		recType := binary.BigEndian.Uint16(hdr[2:4])
		if length < 4 || length%2 != 0 {
			return nil, fmt.Errorf("%w: record length %d", ErrFormat, length)
		}
		payload := make([]byte, length-4)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("%w: truncated record: %v", ErrFormat, err)
		}
		switch recType {
		case recHEADER:
			sawHeader = true
		case recBGNLIB, recBGNSTR, recENDSTR:
			// Timestamps / structure bracketing: nothing to retain.
		case recLIBNAME:
			lib.Name = cstr(payload)
		case recSTRNAME:
			lib.StructName = cstr(payload)
		case recUNITS:
			if len(payload) != 16 {
				return nil, fmt.Errorf("%w: UNITS payload %d bytes", ErrFormat, len(payload))
			}
			lib.UserUnit = parseReal8(payload[0:8])
			lib.MetersPerDBU = parseReal8(payload[8:16])
		case recBOUNDARY:
			cur = &Shape{}
		case recLAYER:
			if cur == nil {
				return nil, fmt.Errorf("%w: LAYER outside element", ErrFormat)
			}
			if len(payload) < 2 {
				return nil, fmt.Errorf("%w: LAYER payload %d bytes", ErrFormat, len(payload))
			}
			cur.Layer = int16(binary.BigEndian.Uint16(payload))
		case recDATATYPE:
			if cur == nil {
				return nil, fmt.Errorf("%w: DATATYPE outside element", ErrFormat)
			}
			if len(payload) < 2 {
				return nil, fmt.Errorf("%w: DATATYPE payload %d bytes", ErrFormat, len(payload))
			}
			cur.Datatype = int16(binary.BigEndian.Uint16(payload))
		case recXY:
			if cur == nil {
				return nil, fmt.Errorf("%w: XY outside element", ErrFormat)
			}
			if len(payload)%8 != 0 {
				return nil, fmt.Errorf("%w: XY payload %d bytes", ErrFormat, len(payload))
			}
			n := len(payload) / 8
			xs := make([]int32, n)
			ys := make([]int32, n)
			minX, minY := int32(math.MaxInt32), int32(math.MaxInt32)
			maxX, maxY := int32(math.MinInt32), int32(math.MinInt32)
			for i := 0; i < n; i++ {
				xs[i] = int32(binary.BigEndian.Uint32(payload[8*i:]))
				ys[i] = int32(binary.BigEndian.Uint32(payload[8*i+4:]))
				if xs[i] < minX {
					minX = xs[i]
				}
				if xs[i] > maxX {
					maxX = xs[i]
				}
				if ys[i] < minY {
					minY = ys[i]
				}
				if ys[i] > maxY {
					maxY = ys[i]
				}
			}
			// Verify the polygon is its own bounding rectangle (every vertex
			// on a corner) — the only polygons this subset supports.
			for i := 0; i < n; i++ {
				if (xs[i] != minX && xs[i] != maxX) || (ys[i] != minY && ys[i] != maxY) {
					return nil, fmt.Errorf("%w: non-rectangular boundary", ErrFormat)
				}
			}
			cur.Rect = geom.Rect{X1: int64(minX), Y1: int64(minY), X2: int64(maxX), Y2: int64(maxY)}
		case recENDEL:
			if cur == nil {
				return nil, fmt.Errorf("%w: ENDEL outside element", ErrFormat)
			}
			lib.Shapes = append(lib.Shapes, *cur)
			cur = nil
		case recENDLIB:
			if !sawHeader {
				return nil, fmt.Errorf("%w: ENDLIB before HEADER", ErrFormat)
			}
			return lib, nil
		default:
			return nil, fmt.Errorf("%w: unsupported record type 0x%04X", ErrFormat, recType)
		}
	}
}

// cstr strips GDSII string padding.
func cstr(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}
