package gds

import (
	"bytes"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the GDSII reader; it must never panic,
// and any stream it accepts must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, sampleLib()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 6, 0, 2, 0, 0})
	corrupt := append([]byte(nil), seed.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, lib); err != nil {
			t.Fatalf("accepted library failed to write: %v", err)
		}
		lib2, err := Read(&buf)
		if err != nil {
			t.Fatalf("own output failed to parse: %v", err)
		}
		if len(lib2.Shapes) > len(lib.Shapes) {
			t.Fatalf("round trip grew shapes: %d -> %d", len(lib.Shapes), len(lib2.Shapes))
		}
	})
}
