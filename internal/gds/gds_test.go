package gds

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pilfill/internal/geom"
)

func mustReal8(t *testing.T, f float64) []byte {
	t.Helper()
	b, err := real8(f)
	if err != nil {
		t.Fatalf("real8(%g): %v", f, err)
	}
	return b
}

func TestReal8RoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.001, 1e-9, 2, 16, 1.0 / 16, 3.14159265, -42.5, 1e-3, 1e6}
	for _, f := range cases {
		got := parseReal8(mustReal8(t, f))
		tol := math.Abs(f) * 1e-14
		if math.Abs(got-f) > tol {
			t.Errorf("real8 round trip %g -> %g", f, got)
		}
	}
}

func TestQuickReal8RoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(20)-10))
		b, err := real8(v)
		if err != nil {
			return false
		}
		got := parseReal8(b)
		return math.Abs(got-v) <= math.Abs(v)*1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReal8RejectsUnrepresentable(t *testing.T) {
	// Regression: out-of-range magnitudes used to saturate silently to the
	// largest exponent (and ±Inf spun the normalize loop forever), so a bogus
	// UserUnit produced a syntactically valid stream with corrupt units.
	for _, f := range []float64{1e200, -1e200, 5e-300, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := real8(f); err == nil {
			t.Errorf("real8(%g) succeeded, want error", f)
		}
	}
	lib := sampleLib()
	lib.UserUnit = 1e200
	if err := Write(&bytes.Buffer{}, lib); err == nil {
		t.Error("Write with unrepresentable UserUnit succeeded, want error")
	}
	lib = sampleLib()
	lib.MetersPerDBU = math.Inf(1)
	if err := Write(&bytes.Buffer{}, lib); err == nil {
		t.Error("Write with infinite MetersPerDBU succeeded, want error")
	}
}

func sampleLib() *Library {
	return &Library{
		Name:       "FILLLIB",
		StructName: "CHIP",
		Shapes: []Shape{
			{Layer: 3, Datatype: 0, Rect: geom.Rect{X1: 0, Y1: 0, X2: 300, Y2: 300}},
			{Layer: 3, Datatype: 1, Rect: geom.Rect{X1: 400, Y1: 0, X2: 700, Y2: 300}},
			{Layer: 5, Datatype: 0, Rect: geom.Rect{X1: -100, Y1: -100, X2: 0, Y2: 0}},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	lib := sampleLib()
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "FILLLIB" || got.StructName != "CHIP" {
		t.Errorf("names: %q %q", got.Name, got.StructName)
	}
	if math.Abs(got.UserUnit-1e-3) > 1e-18 || math.Abs(got.MetersPerDBU-1e-9) > 1e-24 {
		t.Errorf("units: %g %g", got.UserUnit, got.MetersPerDBU)
	}
	if len(got.Shapes) != len(lib.Shapes) {
		t.Fatalf("shapes = %d, want %d", len(got.Shapes), len(lib.Shapes))
	}
	for i, s := range lib.Shapes {
		if got.Shapes[i] != s {
			t.Errorf("shape %d = %+v, want %+v", i, got.Shapes[i], s)
		}
	}
}

func TestWriteSkipsEmptyRects(t *testing.T) {
	lib := &Library{Shapes: []Shape{{Layer: 1, Rect: geom.Rect{}}}}
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shapes) != 0 {
		t.Errorf("empty rect written: %v", got.Shapes)
	}
}

func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Write(&a, sampleLib()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, sampleLib()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("non-deterministic GDS output")
	}
}

func TestReadErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleLib()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncation anywhere must error, never panic.
	for _, cut := range []int{0, 1, 3, 7, len(full) / 2, len(full) - 2} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d: no error", cut)
		}
	}
	// Corrupt record type.
	bad := append([]byte(nil), full...)
	bad[2] = 0x7F
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Errorf("bad record type: err = %v", err)
	}
	// Odd record length.
	bad2 := append([]byte(nil), full...)
	bad2[1] = 0x05
	if _, err := Read(bytes.NewReader(bad2)); !errors.Is(err, ErrFormat) {
		t.Errorf("odd length: err = %v", err)
	}
}

func TestReadRejectsNonRectangularBoundary(t *testing.T) {
	// Hand-build a stream with a triangular boundary.
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.record(recHEADER, int16s(600))
	w.record(recBGNLIB, int16s(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0))
	w.record(recLIBNAME, gdsString("L"))
	w.record(recUNITS, append(mustReal8(t, 1e-3), mustReal8(t, 1e-9)...))
	w.record(recBGNSTR, int16s(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0))
	w.record(recSTRNAME, gdsString("S"))
	w.record(recBOUNDARY, nil)
	w.record(recLAYER, int16s(1))
	w.record(recDATATYPE, int16s(0))
	w.record(recXY, int32s(0, 0, 100, 0, 50, 100, 0, 0))
	w.record(recENDEL, nil)
	w.record(recENDSTR, nil)
	w.record(recENDLIB, nil)
	if w.err != nil {
		t.Fatal(w.err)
	}
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); !errors.Is(err, ErrFormat) {
		t.Fatalf("triangle accepted: %v", err)
	}
}

func TestQuickShapeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lib := &Library{}
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			x := rng.Int63n(1 << 20)
			y := rng.Int63n(1 << 20)
			lib.Shapes = append(lib.Shapes, Shape{
				Layer:    int16(rng.Intn(64)),
				Datatype: int16(rng.Intn(4)),
				Rect:     geom.Rect{X1: x, Y1: y, X2: x + 1 + rng.Int63n(1000), Y2: y + 1 + rng.Int63n(1000)},
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, lib); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Shapes) != n {
			return false
		}
		for i := range lib.Shapes {
			if got.Shapes[i] != lib.Shapes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite1000Shapes(b *testing.B) {
	lib := &Library{}
	for i := 0; i < 1000; i++ {
		x := int64(i * 400)
		lib.Shapes = append(lib.Shapes, Shape{Layer: 3, Rect: geom.Rect{X1: x, Y1: 0, X2: x + 300, Y2: 300}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, lib); err != nil {
			b.Fatal(err)
		}
	}
}
