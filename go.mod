module pilfill

go 1.22
