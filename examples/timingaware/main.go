// Timing-aware fill on a critical net: this example reproduces the paper's
// motivation scenario. A layout carries one long, heavily loaded net (many
// downstream sinks — high weight W_l); density rules force fill next to it.
// The sink-weighted objective (the paper's Table 2 variant) steers fill away
// from high-resistance positions on that net, and the per-net delay cap
// (the paper's "budgeted capacitance" future-work extension) bounds the
// damage outright.
package main

import (
	"fmt"
	"log"

	"pilfill"
)

func main() {
	l, err := pilfill.GenerateT2()
	if err != nil {
		log.Fatal(err)
	}

	base := pilfill.Options{
		Window:           32000,
		R:                4,
		Rule:             pilfill.DefaultRuleT1T2(),
		Weighted:         true, // optimize Σ W_l · Δτ_l, W_l = downstream sinks
		Seed:             7,
		TargetMinDensity: 0.15, // a foundry-style min-density rule
	}
	s, err := pilfill.NewSession(l, base)
	if err != nil {
		log.Fatal(err)
	}

	normal, err := s.Run(pilfill.Normal)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := s.Run(pilfill.Greedy)
	if err != nil {
		log.Fatal(err)
	}
	ilp2, err := s.Run(pilfill.ILPII)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== weighted (timing-slack driven) fill synthesis ==")
	fmt.Print(normal.Summary())
	fmt.Print(greedy.Summary())
	fmt.Print(ilp2.Summary())

	// The worst-hit net under each method.
	worst := func(r *pilfill.Report) (int, float64) {
		wn, wv := -1, 0.0
		for n, v := range r.Result.PerNet {
			if v > wv {
				wn, wv = n, v
			}
		}
		return wn, wv
	}
	wn, wv := worst(normal)
	fmt.Printf("Normal's worst-hit net: %s (+%.4f ps)\n", l.Nets[wn].Name, wv*1e12)
	wn2, wv2 := worst(ilp2)
	fmt.Printf("ILP-II's worst-hit net: %s (+%.4f ps)\n", l.Nets[wn2].Name, wv2*1e12)

	// Now cap every net's added delay *per tile*. A net crossing many tiles
	// accrues up to (tiles x cap), so the cap must be well below the
	// worst-net total to bite; 1/50 of Normal's worst keeps every tile's
	// contribution small. Some fill may go unplaced — the report shows
	// requested vs placed.
	capped := base
	capped.NetCap = wv / 50
	s2, err := pilfill.NewSession(l, capped)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := s2.Run(pilfill.GreedyCapped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== with a per-net delay cap ==")
	fmt.Print(rep.Summary())
	wn3, wv3 := worst(rep)
	if wn3 >= 0 {
		fmt.Printf("capped worst-hit net: %s (+%.4f ps)\n", l.Nets[wn3].Name, wv3*1e12)
	}
}
