// Density-map walkthrough: analyze a layout's window density under the
// fixed r-dissection, compute the fill budget that equalizes it, place the
// fill with the paper's ILP-II method, render before/after density maps as
// ASCII heat maps, and export the filled layout as GDSII and DEF.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pilfill"
	"pilfill/internal/density"
)

func heatmap(title string, g *density.Grid, fillAreas [][]int64) {
	fmt.Println(title)
	wx, wy := g.D.NumWindows()
	shades := []byte(" .:-=+*#%@")
	// Print up to 32 columns, subsampling if needed.
	step := 1
	for wx/step > 32 {
		step++
	}
	for j := wy - 1; j >= 0; j -= step {
		row := make([]byte, 0, wx/step+2)
		for i := 0; i < wx; i += step {
			win := g.D.WindowRect(i, j)
			var area int64
			for di := 0; di < g.D.R; di++ {
				for dj := 0; dj < g.D.R; dj++ {
					ti, tj := i+di, j+dj
					if ti >= g.D.NX || tj >= g.D.NY {
						continue
					}
					area += g.TileArea[ti][tj]
					if fillAreas != nil {
						area += fillAreas[ti][tj]
					}
				}
			}
			d := float64(area) / float64(win.Area())
			idx := int(d * float64(len(shades)))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			row = append(row, shades[idx])
		}
		fmt.Printf("  |%s|\n", row)
	}
}

func main() {
	l, err := pilfill.GenerateT1()
	if err != nil {
		log.Fatal(err)
	}
	opts := pilfill.Options{
		Window: 32000,
		R:      4,
		Rule:   pilfill.DefaultRuleT1T2(),
		Seed:   11,
	}
	s, err := pilfill.NewSession(l, opts)
	if err != nil {
		log.Fatal(err)
	}

	minB, maxB := s.Grid.Stats(nil)
	fmt.Printf("before fill: window density in [%.4f, %.4f], variation %.4f\n",
		minB, maxB, maxB-minB)
	heatmap("density before fill:", s.Grid, nil)

	rep, err := s.Run(pilfill.ILPII)
	if err != nil {
		log.Fatal(err)
	}
	fillAreas := rep.Result.Fill.TileFillAreas(s.Engine.Dis)
	fmt.Printf("\nafter %d fill features: window density in [%.4f, %.4f], variation %.4f\n",
		rep.Result.Placed, rep.MinAfter, rep.MaxAfter, rep.MaxAfter-rep.MinAfter)
	heatmap("density after fill:", s.Grid, fillAreas)
	fmt.Printf("\ndelay impact of the fill: %.4f ps unweighted (%.4f ps weighted)\n",
		rep.Result.Unweighted*1e12, rep.Result.Weighted*1e12)

	// Export the filled layout to the temp directory.
	writeOut := func(name string, write func(*os.File) error) {
		p := filepath.Join(os.TempDir(), name)
		f, err := os.Create(p)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", p)
	}
	writeOut("t1_filled.def", func(f *os.File) error {
		return pilfill.SaveDEF(f, l, rep.Result.Fill)
	})
	writeOut("t1_filled.gds", func(f *os.File) error {
		// Fill goes to GDS layer (wire layer + 100) so viewers can color it.
		return pilfill.SaveGDS(f, l, rep.Result.Fill, 100)
	})
}
