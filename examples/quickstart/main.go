// Quickstart: generate a synthetic layout, run performance-impact limited
// fill synthesis with the paper's best method (ILP-II), and compare its
// delay impact against the density-only Normal baseline.
package main

import (
	"fmt"
	"log"

	"pilfill"
)

func main() {
	// T1 is a dense synthetic layout standing in for the paper's first
	// industry testcase.
	l, err := pilfill.GenerateT1()
	if err != nil {
		log.Fatal(err)
	}

	// A session fixes the density setup: 32 um windows cut into r=4 tiles,
	// and a per-tile fill budget that lifts every window to the best
	// achievable minimum density.
	s, err := pilfill.NewSession(l, pilfill.Options{
		Window: 32000, // nm
		R:      4,
		Rule:   pilfill.DefaultRuleT1T2(),
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout %s: %d nets, %d fill features budgeted\n",
		l.Name, len(l.Nets), s.Budget.Total())

	// Both methods place exactly the same number of features per tile —
	// identical density control — but choose different sites.
	normal, err := s.Run(pilfill.Normal)
	if err != nil {
		log.Fatal(err)
	}
	ilp2, err := s.Run(pilfill.ILPII)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(normal.Summary())
	fmt.Print(ilp2.Summary())
	reduction := 1 - ilp2.Result.Unweighted/normal.Result.Unweighted
	fmt.Printf("ILP-II reduces total delay impact by %.1f%%\n", 100*reduction)
}
