// Budgeted timing-closure flow: the paper's Section 7 describes integrating
// PIL-Fill with slack budgets from synthesis/place-and-route. This example
// demonstrates both directions of that integration:
//
//  1. MDFC with per-net budgets (RunBudgeted): the density-required fill is
//     placed so each net absorbs at most a fraction of its baseline Elmore
//     delay — fill is rebalanced away from timing-critical nets.
//  2. MVDC (RunMVDC): the inverse formulation — fix a per-tile delay budget
//     and maximize density uniformity within it, sweeping the budget to
//     expose the delay/uniformity trade-off curve.
package main

import (
	"fmt"
	"log"

	"pilfill"
)

func main() {
	l, err := pilfill.GenerateT2()
	if err != nil {
		log.Fatal(err)
	}
	s, err := pilfill.NewSession(l, pilfill.Options{
		Window:           32000,
		R:                4,
		Rule:             pilfill.DefaultRuleT1T2(),
		Seed:             3,
		TargetMinDensity: 0.15,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== MDFC with per-net delay budgets ==")
	unconstrained, err := s.Run(pilfill.ILPII)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(unconstrained.Summary())
	for _, fraction := range []float64{1.0, 0.01, 0.0001} {
		rep, err := s.RunBudgeted(fraction)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, v := range rep.Result.PerNet {
			if v > worst {
				worst = v
			}
		}
		fmt.Printf("slack fraction %7.4f: placed %d/%d, total %.4f ps, worst net +%.6f ps\n",
			fraction, rep.Result.Placed, rep.Result.Requested,
			rep.Result.Unweighted*1e12, worst*1e12)
	}

	fmt.Println("\n== MVDC: delay budget vs. achievable density ==")
	fmt.Printf("%14s %12s %10s %12s\n", "tile budget", "min density", "fill", "delay (ps)")
	for _, budget := range []float64{0, 1e-18, 1e-17, 1e-16, 1e-15, 1e-12} {
		rep, achieved, err := s.RunMVDC(budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%13.0e %12.4f %10d %12.4f\n",
			budget, achieved, rep.Result.Placed, rep.Result.Unweighted*1e12)
	}
	fmt.Printf("(unconstrained target was %.4f)\n", s.Target)
}
