package pilfill

import (
	"context"
	"errors"
	"testing"
	"time"
)

// t2Session builds a small session shared by the cancellation tests.
func t2Session(t *testing.T, opts Options) *Session {
	t.Helper()
	l, err := GenerateT2()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Window == 0 {
		opts.Window = 51200
	}
	if opts.R == 0 {
		opts.R = 4
	}
	opts.Rule = DefaultRuleT1T2()
	s, err := NewSession(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunContextPreCancelled(t *testing.T) {
	s := t2Session(t, Options{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, Greedy); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext err = %v, want context.Canceled", err)
	}
	// The same session still works with a live context.
	if _, err := s.RunContext(context.Background(), Greedy); err != nil {
		t.Fatalf("run after cancelled run: %v", err)
	}
}

func TestRunContextDeadlineMidSolve(t *testing.T) {
	l, err := GenerateT1()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(l, Options{Window: 51200, R: 4, Seed: 1, Rule: DefaultRuleT1T2()})
	if err != nil {
		t.Fatal(err)
	}
	// T1 ILP-II takes hundreds of milliseconds over many tiles; a short
	// deadline must abort mid-run via the tile-boundary and branch-and-bound
	// checks, well before the natural completion time.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.RunContext(ctx, ILPII)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; solver did not stop promptly", elapsed)
	}
	// An uncancelled run on the same session still matches a fresh run.
	rep, err := s.Run(ILPII)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Placed != rep.Result.Requested {
		t.Fatalf("post-cancel run placed %d of %d", rep.Result.Placed, rep.Result.Requested)
	}
}

func TestRunContextPreCancelledDualAscent(t *testing.T) {
	// DualAscent honors cancellation inside the dual sweep itself (per hull
	// column and per λ-breakpoint batch), not only at tile boundaries.
	s := t2Session(t, Options{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, DualAscent); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext err = %v, want context.Canceled", err)
	}
	if _, err := s.RunContext(context.Background(), DualAscent); err != nil {
		t.Fatalf("run after cancelled run: %v", err)
	}
}

func TestRunMVDCContextCancelled(t *testing.T) {
	s := t2Session(t, Options{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.RunMVDCContext(ctx, 1e-6); !errors.Is(err, context.Canceled) {
		t.Fatalf("MVDC err = %v, want context.Canceled", err)
	}
}

func TestRunBudgetedContextCancelled(t *testing.T) {
	s := t2Session(t, Options{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunBudgetedContext(ctx, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("budgeted err = %v, want context.Canceled", err)
	}
}

// TestRunContextWorkersCancelled covers the concurrent solve path: the
// fan-out must observe the cancel and the reduction must surface it.
func TestRunContextWorkersCancelled(t *testing.T) {
	s := t2Session(t, Options{Seed: 1, Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, ILPII); !errors.Is(err, context.Canceled) {
		t.Fatalf("workers RunContext err = %v, want context.Canceled", err)
	}
}
